//! Partial aggregation states.

use std::collections::BTreeMap;

use crate::output::AggOutput;

/// The partial state of an aggregate computation.
///
/// States are what SP-Cube's mappers accumulate for skewed c-groups and ship
/// to the skew reducer (at most `k` partials per skewed group — Section 5.1),
/// and what combiners in the baseline algorithms push through the shuffle.
/// `merge` must be commutative and associative with `init` as identity;
/// property tests in this module verify those laws.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    /// Running cardinality.
    Count(u64),
    /// Running sum.
    Sum(f64),
    /// Running minimum (`+inf` = identity).
    Min(f64),
    /// Running maximum (`-inf` = identity).
    Max(f64),
    /// Running (sum, count) for `avg`.
    Avg {
        /// Sum of measures seen so far.
        sum: f64,
        /// Number of measures seen so far.
        count: u64,
    },
    /// Exact frequency table for `top-k most frequent measure` (holistic).
    /// Measures are keyed by their bit pattern to stay `Eq`-safe; the table
    /// is a `BTreeMap` so state comparison and serialization are
    /// deterministic.
    TopK {
        /// How many top entries `finalize` reports.
        k: usize,
        /// measure bits -> frequency.
        counts: BTreeMap<u64, u64>,
    },
    /// Exact distinct measure values (partially algebraic `count distinct`):
    /// the set of value bit patterns seen, which merges by union.
    Distinct(std::collections::BTreeSet<u64>),
}

impl AggState {
    /// Fresh top-k state.
    pub fn new_topk(k: usize) -> AggState {
        AggState::TopK {
            k,
            counts: BTreeMap::new(),
        }
    }

    /// Fresh count-distinct state.
    pub fn new_distinct() -> AggState {
        AggState::Distinct(std::collections::BTreeSet::new())
    }

    /// Fold one measure observation into the state.
    #[inline]
    pub fn update(&mut self, measure: f64) {
        match self {
            AggState::Count(c) => *c += 1,
            AggState::Sum(s) => *s += measure,
            AggState::Min(m) => {
                if measure < *m {
                    *m = measure;
                }
            }
            AggState::Max(m) => {
                if measure > *m {
                    *m = measure;
                }
            }
            AggState::Avg { sum, count } => {
                *sum += measure;
                *count += 1;
            }
            AggState::TopK { counts, .. } => {
                *counts.entry(measure.to_bits()).or_insert(0) += 1;
            }
            AggState::Distinct(values) => {
                values.insert(measure.to_bits());
            }
        }
    }

    /// Merge another partial state of the same function into this one.
    /// Panics (debug) on mismatched variants — states of different
    /// functions never meet in a correct job.
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += *b,
            (AggState::Sum(a), AggState::Sum(b)) => *a += *b,
            (AggState::Min(a), AggState::Min(b)) => {
                if *b < *a {
                    *a = *b;
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if *b > *a {
                    *a = *b;
                }
            }
            (AggState::Avg { sum: s1, count: c1 }, AggState::Avg { sum: s2, count: c2 }) => {
                *s1 += *s2;
                *c1 += *c2;
            }
            (AggState::TopK { counts: a, .. }, AggState::TopK { counts: b, .. }) => {
                for (bits, n) in b {
                    *a.entry(*bits).or_insert(0) += *n;
                }
            }
            (AggState::Distinct(a), AggState::Distinct(b)) => {
                a.extend(b.iter().copied());
            }
            (a, b) => panic!("merging mismatched aggregate states {a:?} and {b:?}"),
        }
    }

    /// Finish the computation, producing the value written to the cube.
    pub fn finalize(&self) -> AggOutput {
        match self {
            AggState::Count(c) => AggOutput::Number(*c as f64),
            AggState::Sum(s) => AggOutput::Number(*s),
            AggState::Min(m) | AggState::Max(m) => AggOutput::Number(*m),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    AggOutput::Number(f64::NAN)
                } else {
                    AggOutput::Number(sum / *count as f64)
                }
            }
            AggState::TopK { k, counts } => {
                let mut entries: Vec<(u64, u64)> =
                    counts.iter().map(|(&bits, &n)| (bits, n)).collect();
                // Most frequent first; ties broken by measure bits for
                // determinism.
                entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                entries.truncate(*k);
                AggOutput::TopK(
                    entries
                        .into_iter()
                        .map(|(bits, n)| (f64::from_bits(bits), n))
                        .collect(),
                )
            }
            AggState::Distinct(values) => AggOutput::Number(values.len() as f64),
        }
    }

    /// Serialized size on the wire, used by the traffic accounting. States
    /// are what combiners and the skew path ship instead of raw measures.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            AggState::Count(_) | AggState::Sum(_) | AggState::Min(_) | AggState::Max(_) => 9,
            AggState::Avg { .. } => 17,
            AggState::TopK { counts, .. } => 9 + 16 * counts.len() as u64,
            AggState::Distinct(values) => 9 + 8 * values.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AggSpec;

    fn fold(spec: AggSpec, measures: &[f64]) -> AggState {
        let mut s = spec.init();
        for &m in measures {
            s.update(m);
        }
        s
    }

    #[test]
    fn count_counts() {
        let s = fold(AggSpec::Count, &[1.0, 2.0, 3.0]);
        assert_eq!(s.finalize(), AggOutput::Number(3.0));
    }

    #[test]
    fn sum_min_max() {
        assert_eq!(
            fold(AggSpec::Sum, &[1.0, 2.5]).finalize(),
            AggOutput::Number(3.5)
        );
        assert_eq!(
            fold(AggSpec::Min, &[4.0, -2.0, 9.0]).finalize(),
            AggOutput::Number(-2.0)
        );
        assert_eq!(
            fold(AggSpec::Max, &[4.0, -2.0, 9.0]).finalize(),
            AggOutput::Number(9.0)
        );
    }

    #[test]
    fn avg_divides() {
        assert_eq!(
            fold(AggSpec::Avg, &[1.0, 2.0, 6.0]).finalize(),
            AggOutput::Number(3.0)
        );
    }

    #[test]
    fn avg_of_nothing_is_nan() {
        match AggSpec::Avg.init().finalize() {
            AggOutput::Number(x) => assert!(x.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn merge_equals_single_pass() {
        // The crucial distributed-correctness law: splitting the input and
        // merging partials gives the same result as one pass.
        let data: Vec<f64> = (0..100).map(|i| (i * 7 % 13) as f64).collect();
        for spec in [
            AggSpec::Count,
            AggSpec::Sum,
            AggSpec::Min,
            AggSpec::Max,
            AggSpec::Avg,
            AggSpec::TopKFrequent(3),
            AggSpec::CountDistinct,
        ] {
            let whole = fold(spec, &data);
            for split in [1, 17, 50, 99] {
                let mut left = fold(spec, &data[..split]);
                let right = fold(spec, &data[split..]);
                left.merge(&right);
                assert_eq!(left.finalize(), whole.finalize(), "{spec:?} split {split}");
            }
        }
    }

    #[test]
    fn merge_is_commutative() {
        for spec in [
            AggSpec::Count,
            AggSpec::Sum,
            AggSpec::Min,
            AggSpec::Max,
            AggSpec::Avg,
        ] {
            let a0 = fold(spec, &[1.0, 5.0]);
            let b0 = fold(spec, &[2.0]);
            let mut ab = a0.clone();
            ab.merge(&b0);
            let mut ba = b0.clone();
            ba.merge(&a0);
            assert_eq!(ab.finalize(), ba.finalize(), "{spec:?}");
        }
    }

    #[test]
    fn count_distinct_counts_unique_values() {
        let s = fold(AggSpec::CountDistinct, &[1.0, 2.0, 2.0, 3.0, 1.0]);
        assert_eq!(s.finalize(), AggOutput::Number(3.0));
        assert_eq!(
            AggSpec::CountDistinct.init().finalize(),
            AggOutput::Number(0.0)
        );
    }

    #[test]
    fn count_distinct_merge_is_union() {
        let mut a = fold(AggSpec::CountDistinct, &[1.0, 2.0]);
        let b = fold(AggSpec::CountDistinct, &[2.0, 3.0]);
        a.merge(&b);
        assert_eq!(a.finalize(), AggOutput::Number(3.0));
    }

    #[test]
    fn topk_orders_by_frequency_then_value() {
        let s = fold(AggSpec::TopKFrequent(2), &[5.0, 5.0, 3.0, 3.0, 1.0]);
        assert_eq!(s.finalize(), AggOutput::TopK(vec![(3.0, 2), (5.0, 2)]));
    }

    #[test]
    fn topk_truncates_to_k() {
        let s = fold(AggSpec::TopKFrequent(1), &[1.0, 1.0, 2.0]);
        assert_eq!(s.finalize(), AggOutput::TopK(vec![(1.0, 2)]));
    }

    /// Merge the given partials left-to-right onto a fresh identity.
    fn chain(spec: AggSpec, parts: &[&AggState]) -> AggState {
        let mut acc = spec.init();
        for p in parts {
            acc.merge(p);
        }
        acc
    }

    #[test]
    fn merge_order_is_invariant_over_three_plus_partials() {
        // Delta layering merges 3+ partial states whose order depends on
        // which layers were compacted when; every permutation and every
        // association shape must finalize identically. Integer-valued
        // measures keep f64 sums exact, so the comparison is bit-exact.
        let chunks: [&[f64]; 4] = [&[1.0, 5.0, 5.0], &[2.0, 2.0], &[], &[7.0, 1.0, 3.0, 3.0]];
        for spec in [
            AggSpec::Count,
            AggSpec::Sum,
            AggSpec::Min,
            AggSpec::Max,
            AggSpec::Avg,
            AggSpec::TopKFrequent(2),
            AggSpec::CountDistinct,
        ] {
            let parts: Vec<AggState> = chunks.iter().map(|c| fold(spec, c)).collect();
            let flat: Vec<f64> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
            let want = fold(spec, &flat).finalize();
            // Every permutation of the four partials…
            let mut order = [0usize, 1, 2, 3];
            permute(&mut order, 0, &mut |perm| {
                let picked: Vec<&AggState> = perm.iter().map(|&i| &parts[i]).collect();
                assert_eq!(chain(spec, &picked).finalize(), want, "{spec:?} {perm:?}");
            });
            // …and both extreme association shapes: left-deep vs pairwise.
            let mut left = parts[0].clone();
            for p in &parts[1..] {
                left.merge(p);
            }
            let mut ab = parts[0].clone();
            ab.merge(&parts[1]);
            let mut cd = parts[2].clone();
            cd.merge(&parts[3]);
            ab.merge(&cd);
            assert_eq!(left.finalize(), want, "{spec:?} left-deep");
            assert_eq!(ab.finalize(), want, "{spec:?} pairwise");
        }
    }

    fn permute(items: &mut [usize; 4], k: usize, visit: &mut dyn FnMut(&[usize; 4])) {
        if k == items.len() {
            visit(items);
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute(items, k + 1, visit);
            items.swap(k, i);
        }
    }

    #[test]
    fn empty_partial_is_a_merge_identity() {
        for spec in [
            AggSpec::Count,
            AggSpec::Sum,
            AggSpec::Min,
            AggSpec::Max,
            AggSpec::Avg,
            AggSpec::TopKFrequent(3),
            AggSpec::CountDistinct,
        ] {
            let full = fold(spec, &[4.0, -2.0, 4.0]);
            let mut left = spec.init();
            left.merge(&full);
            let mut right = full.clone();
            right.merge(&spec.init());
            assert_eq!(left, full, "{spec:?} identity on the left");
            assert_eq!(right, full, "{spec:?} identity on the right");
        }
    }

    #[test]
    fn nan_measures_survive_state_merges() {
        // NaN never compares, so MIN/MAX ignore it regardless of merge
        // order; TopK/Distinct key by bit pattern, so one NaN payload is
        // one value however the partials are grouped.
        let nan = f64::NAN;
        for split in 0..=3usize {
            let data = [nan, 1.0, nan];
            let mut a = fold(AggSpec::Min, &data[..split.min(3)]);
            a.merge(&fold(AggSpec::Min, &data[split.min(3)..]));
            assert_eq!(a.finalize(), AggOutput::Number(1.0), "min split {split}");
            let mut b = fold(AggSpec::CountDistinct, &data[..split.min(3)]);
            b.merge(&fold(AggSpec::CountDistinct, &data[split.min(3)..]));
            assert_eq!(
                b.finalize(),
                AggOutput::Number(2.0),
                "distinct split {split}"
            );
        }
        // AVG is honest about the poison: a NaN measure makes the sum NaN
        // in every merge order, never a half-poisoned result.
        let mut avg = fold(AggSpec::Avg, &[nan]);
        avg.merge(&fold(AggSpec::Avg, &[1.0, 2.0]));
        match avg.finalize() {
            AggOutput::Number(x) => assert!(x.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn avg_count_overflow_is_additive_not_silent() {
        // Counts are u64: two partials that each saw half the ceiling
        // merge without wrapping.
        let big = AggState::Avg {
            sum: 1.0e18,
            count: u64::MAX / 2,
        };
        let mut acc = big.clone();
        acc.merge(&big);
        match acc {
            AggState::Avg { count, .. } => assert_eq!(count, u64::MAX - 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn merging_mismatched_states_panics() {
        let mut a = AggState::Count(1);
        a.merge(&AggState::Sum(2.0));
    }

    #[test]
    fn wire_bytes_reflect_state_size() {
        assert_eq!(AggState::Count(5).wire_bytes(), 9);
        assert_eq!(AggState::Avg { sum: 1.0, count: 1 }.wire_bytes(), 17);
        let t = fold(AggSpec::TopKFrequent(2), &[1.0, 2.0, 3.0]);
        assert_eq!(t.wire_bytes(), 9 + 16 * 3);
    }
}
