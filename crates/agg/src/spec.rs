//! Aggregate function specifications.

use crate::state::AggState;

/// Classification of aggregate functions (Gray et al., cited as \[23\] in the
/// paper; discussed in Section 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Partial aggregates merge directly (`count`, `sum`, `min`, `max`).
    Distributive,
    /// A bounded intermediate state computes the result (`avg`).
    Algebraic,
    /// No constant-size partial state in general (`top-k most frequent`).
    Holistic,
}

/// A concrete aggregate function over the measure attribute.
///
/// The same `AggSpec` value drives the mappers' partial aggregation of
/// skewed c-groups, the reducers' BUC runs, and the final merge at the skew
/// reducer — mirroring how the paper's algorithm is parameterized by the
/// aggregate function while the SP-Sketch stays function-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggSpec {
    /// Cardinality of the c-group (the paper's running default).
    Count,
    /// Sum of measures.
    Sum,
    /// Minimum measure.
    Min,
    /// Maximum measure.
    Max,
    /// Average measure (algebraic: carries sum and count).
    Avg,
    /// Top-k most frequent measure values (holistic). The state keeps exact
    /// per-value counts; its size grows with distinct measures, which is why
    /// the paper defers general holistic support to future work.
    TopKFrequent(usize),
    /// Exact number of distinct measure values. The canonical *partially
    /// algebraic* measure of Section 7 / MRCube: holistic in general, but
    /// its computation partitions by the measure value, so partial states
    /// (value sets) merge losslessly. State size grows with distinct
    /// measures.
    CountDistinct,
}

impl AggSpec {
    /// The function's class.
    pub fn kind(self) -> AggKind {
        match self {
            AggSpec::Count | AggSpec::Sum | AggSpec::Min | AggSpec::Max => AggKind::Distributive,
            AggSpec::Avg => AggKind::Algebraic,
            AggSpec::TopKFrequent(_) | AggSpec::CountDistinct => AggKind::Holistic,
        }
    }

    /// Fresh identity state for this function.
    pub fn init(self) -> AggState {
        match self {
            AggSpec::Count => AggState::Count(0),
            AggSpec::Sum => AggState::Sum(0.0),
            AggSpec::Min => AggState::Min(f64::INFINITY),
            AggSpec::Max => AggState::Max(f64::NEG_INFINITY),
            AggSpec::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggSpec::TopKFrequent(k) => AggState::new_topk(k),
            AggSpec::CountDistinct => AggState::new_distinct(),
        }
    }

    /// Fold one measure value into a state.
    #[inline]
    pub fn update(self, state: &mut AggState, measure: f64) {
        state.update(measure);
    }

    /// State for a single measure observation.
    #[inline]
    pub fn of(self, measure: f64) -> AggState {
        let mut s = self.init();
        s.update(measure);
        s
    }

    /// Whether partial aggregation (map-side combining) is admissible: true
    /// for distributive and algebraic functions and for the bounded-state
    /// holistic `TopKFrequent` (its exact counts merge losslessly).
    pub fn supports_partial_aggregation(self) -> bool {
        true
    }

    /// Human-readable name, used in experiment reports.
    pub fn name(self) -> &'static str {
        match self {
            AggSpec::Count => "count",
            AggSpec::Sum => "sum",
            AggSpec::Min => "min",
            AggSpec::Max => "max",
            AggSpec::Avg => "avg",
            AggSpec::TopKFrequent(_) => "topk",
            AggSpec::CountDistinct => "count_distinct",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        assert_eq!(AggSpec::Count.kind(), AggKind::Distributive);
        assert_eq!(AggSpec::Sum.kind(), AggKind::Distributive);
        assert_eq!(AggSpec::Min.kind(), AggKind::Distributive);
        assert_eq!(AggSpec::Max.kind(), AggKind::Distributive);
        assert_eq!(AggSpec::Avg.kind(), AggKind::Algebraic);
        assert_eq!(AggSpec::TopKFrequent(3).kind(), AggKind::Holistic);
    }

    #[test]
    fn init_is_identity_for_merge() {
        for spec in [
            AggSpec::Count,
            AggSpec::Sum,
            AggSpec::Min,
            AggSpec::Max,
            AggSpec::Avg,
        ] {
            let mut a = spec.of(5.0);
            let id = spec.init();
            a.merge(&id);
            assert_eq!(a, spec.of(5.0), "{spec:?}");
        }
    }

    #[test]
    fn of_builds_singleton_state() {
        assert_eq!(AggSpec::Count.of(9.0), AggState::Count(1));
        assert_eq!(AggSpec::Sum.of(9.0), AggState::Sum(9.0));
        assert_eq!(AggSpec::Min.of(9.0), AggState::Min(9.0));
        assert_eq!(AggSpec::Max.of(9.0), AggState::Max(9.0));
        assert_eq!(AggSpec::Avg.of(9.0), AggState::Avg { sum: 9.0, count: 1 });
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AggSpec::Count.name(), "count");
        assert_eq!(AggSpec::TopKFrequent(5).name(), "topk");
    }
}
