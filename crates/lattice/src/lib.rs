//! Cube and tuple lattices (Section 2.2 of the paper).
//!
//! Two lattices drive every algorithm in this workspace:
//!
//! * the **cube lattice** — nodes are cuboids (identified by a
//!   [`Mask`](spcube_common::Mask)); a cuboid `C'` is a *descendant* of `C`
//!   iff its group-by set drops one attribute of `C`;
//! * the **tuple lattice** — for a tuple `t`, nodes are all projections of
//!   `t`, i.e. the c-groups `t` contributes to.
//!
//! Both share the same mask structure, so this crate centers on a cached,
//! deterministic **bottom-up BFS order** over masks (ascending by
//! `(arity, mask)`), which is the traversal order of the SP-Cube mapper
//! (Algorithm 3) and the tie-breaker of the anchor-assignment rule.

pub mod anchor;
pub mod bfs;
pub mod cube_lattice;
pub mod tuple_lattice;

pub use anchor::{anchor_mask, is_anchor};
pub use bfs::BfsOrder;
pub use cube_lattice::CubeLattice;
pub use tuple_lattice::TupleLattice;
