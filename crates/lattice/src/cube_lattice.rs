//! The cube lattice (Definition 2.3).

use spcube_common::Mask;

use crate::bfs::BfsOrder;

/// The lattice of all `2^d` cuboids of a `d`-dimensional relation.
///
/// Wraps a [`BfsOrder`] and exposes the ancestor/descendant structure used
/// by Observation 2.5 (a cuboid can be derived from any of its descendants)
/// and by the SP-Sketch, which stores one node per cuboid.
#[derive(Debug, Clone)]
pub struct CubeLattice {
    bfs: BfsOrder,
}

impl CubeLattice {
    /// Build the lattice for `d` dimensions.
    pub fn new(d: usize) -> CubeLattice {
        CubeLattice {
            bfs: BfsOrder::new(d),
        }
    }

    /// Dimensionality `d`.
    pub fn dims(&self) -> usize {
        self.bfs.dims()
    }

    /// Number of cuboids, `2^d`.
    pub fn len(&self) -> usize {
        self.bfs.order().len()
    }

    /// Never empty: the apex cuboid always exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shared BFS order.
    pub fn bfs(&self) -> &BfsOrder {
        &self.bfs
    }

    /// All cuboids bottom-up (apex first).
    pub fn bottom_up(&self) -> impl Iterator<Item = Mask> + '_ {
        self.bfs.order().iter().copied()
    }

    /// All cuboids top-down (full cuboid first).
    pub fn top_down(&self) -> impl Iterator<Item = Mask> + '_ {
        self.bfs.order().iter().rev().copied()
    }

    /// Immediate descendants of a cuboid (drop one attribute).
    pub fn descendants(&self, c: Mask) -> impl Iterator<Item = Mask> {
        c.children()
    }

    /// Immediate ancestors of a cuboid (add one attribute).
    pub fn ancestors(&self, c: Mask) -> impl Iterator<Item = Mask> {
        c.parents(self.dims())
    }

    /// All strict descendants (transitive), i.e. strict subsets.
    pub fn all_descendants(&self, c: Mask) -> impl Iterator<Item = Mask> {
        c.subsets().filter(move |&s| s != c)
    }

    /// All strict ancestors (transitive), i.e. strict supersets within `d`.
    pub fn all_ancestors(&self, c: Mask) -> impl Iterator<Item = Mask> {
        let d = self.dims();
        c.supersets(d).filter(move |&s| s != c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_has_eight_cuboids() {
        // Example 2.2: a 3-dimensional relation has 8 cuboids.
        let l = CubeLattice::new(3);
        assert_eq!(l.len(), 8);
    }

    #[test]
    fn descendants_drop_exactly_one_attribute() {
        let l = CubeLattice::new(3);
        let c = Mask(0b101); // (name, *, year)
        let d: Vec<u32> = l.descendants(c).map(|m| m.0).collect();
        assert_eq!(d, vec![0b100, 0b001]);
        for m in l.descendants(c) {
            assert_eq!(m.arity(), c.arity() - 1);
            assert!(m.is_strict_subset_of(c));
        }
    }

    #[test]
    fn ancestors_add_exactly_one_attribute() {
        let l = CubeLattice::new(3);
        let c = Mask(0b001);
        let a: Vec<u32> = l.ancestors(c).map(|m| m.0).collect();
        assert_eq!(a, vec![0b011, 0b101]);
    }

    #[test]
    fn ancestor_descendant_duality() {
        let l = CubeLattice::new(4);
        for c in l.bottom_up() {
            for d in l.descendants(c) {
                assert!(l.ancestors(d).any(|a| a == c));
            }
        }
    }

    #[test]
    fn transitive_closures() {
        let l = CubeLattice::new(3);
        assert_eq!(l.all_descendants(Mask(0b111)).count(), 7);
        assert_eq!(l.all_ancestors(Mask::EMPTY).count(), 7);
        assert_eq!(l.all_descendants(Mask::EMPTY).count(), 0);
        assert_eq!(l.all_ancestors(Mask(0b111)).count(), 0);
    }

    #[test]
    fn top_down_reverses_bottom_up() {
        let l = CubeLattice::new(3);
        let up: Vec<Mask> = l.bottom_up().collect();
        let mut down: Vec<Mask> = l.top_down().collect();
        down.reverse();
        assert_eq!(up, down);
    }
}
