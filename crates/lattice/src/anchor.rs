//! Anchor assignment for SP-Cube (Section 5.1 of the paper).
//!
//! During the map phase, the first *non-skewed, unmarked* node of a tuple's
//! lattice in BFS order becomes an **anchor**: the tuple is shipped to the
//! reducer owning that anchor's range, and the anchor plus all its ancestors
//! are marked. A node `g` ends up being an anchor iff `g` is non-skewed and
//! *every strict descendant of `g` is skewed* (proved in the tests below by
//! simulating the marking process).
//!
//! Dually, each c-group `h` is **assigned** to exactly one anchor — the
//! BFS-first non-skewed node among `h`'s descendants-or-self. The reducer
//! holding anchor `a` computes `h` iff `anchor_mask(h) == a`, which avoids
//! computing shared ancestors twice ("assign the computation of each c-group
//! to its smallest non-skewed descendant", §5.1).
//!
//! Both mappers and reducers evaluate these predicates independently from
//! the SP-Sketch alone, so the assignment needs no coordination. Skewness is
//! abstracted as a closure over masks: for a fixed tuple (or group), the
//! caller checks whether that tuple's projection at the mask is skewed.

use spcube_common::Mask;

use crate::bfs::bfs_key;

/// The BFS-first non-skewed mask among `h`'s subsets (descendants-or-self),
/// or `None` if every subset — including `h` itself — is skewed (then `h` is
/// aggregated map-side and never assigned to a range reducer).
///
/// `is_skewed(m)` must report whether the *projection of the group/tuple at
/// mask `m`* is skewed.
pub fn anchor_mask(h: Mask, is_skewed: impl Fn(Mask) -> bool) -> Option<Mask> {
    let mut best: Option<(u32, u32)> = None;
    let mut best_mask = None;
    for sub in h.subsets() {
        if !is_skewed(sub) {
            let key = bfs_key(sub);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
                best_mask = Some(sub);
            }
        }
    }
    best_mask
}

/// Whether `g` would become an anchor for a tuple whose skewness profile is
/// `is_skewed`: `g` is non-skewed and all strict descendants are skewed.
pub fn is_anchor(g: Mask, is_skewed: impl Fn(Mask) -> bool) -> bool {
    if is_skewed(g) {
        return false;
    }
    g.subsets().all(|s| s == g || is_skewed(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::BfsOrder;
    use std::collections::HashSet;

    /// Simulate the mapper's marking walk of Algorithm 3 and return the set
    /// of anchors it selects.
    fn simulate_mapper_anchors(d: usize, skewed: &HashSet<u32>) -> Vec<Mask> {
        let bfs = BfsOrder::new(d);
        let mut marked = HashSet::new();
        let mut anchors = Vec::new();
        for &m in bfs.order() {
            if marked.contains(&m.0) {
                continue;
            }
            if skewed.contains(&m.0) {
                marked.insert(m.0); // aggregated map-side
            } else {
                anchors.push(m);
                for sup in m.supersets(d) {
                    marked.insert(sup.0);
                }
            }
        }
        anchors
    }

    #[test]
    fn is_anchor_matches_mapper_simulation() {
        let d = 4;
        // Try a spread of skew profiles (downward-closed and not).
        let profiles: Vec<HashSet<u32>> = vec![
            HashSet::new(),
            [0b0000u32].into_iter().collect(),
            [0b0000, 0b0001, 0b0010].into_iter().collect(),
            [0b0000, 0b0001, 0b0010, 0b0100, 0b1000]
                .into_iter()
                .collect(),
            [0b0000, 0b0011, 0b0001].into_iter().collect(),
        ];
        for skewed in profiles {
            let sim = simulate_mapper_anchors(d, &skewed);
            let pred: Vec<Mask> = BfsOrder::new(d)
                .order()
                .iter()
                .copied()
                .filter(|&m| is_anchor(m, |x| skewed.contains(&x.0)))
                .collect();
            assert_eq!(sim, pred, "skew profile {skewed:?}");
        }
    }

    #[test]
    fn anchor_mask_picks_bfs_first_non_skewed_subset() {
        // Skewed: apex and first two singletons -> anchor of 0b011 is 0b011
        // itself? Its subsets: 000(skewed) 001(skewed) 010(skewed) 011.
        let skewed: HashSet<u32> = [0b000u32, 0b001, 0b010].into_iter().collect();
        let a = anchor_mask(Mask(0b011), |m| skewed.contains(&m.0)).unwrap();
        assert_eq!(a, Mask(0b011));
        // Anchor of 0b111: first non-skewed subset in BFS order is 0b100.
        let a = anchor_mask(Mask(0b111), |m| skewed.contains(&m.0)).unwrap();
        assert_eq!(a, Mask(0b100));
    }

    #[test]
    fn no_skew_means_every_group_anchors_at_apex() {
        let a = anchor_mask(Mask(0b1101), |_| false).unwrap();
        assert_eq!(a, Mask::EMPTY);
    }

    #[test]
    fn all_skewed_returns_none() {
        assert!(anchor_mask(Mask(0b11), |_| true).is_none());
    }

    #[test]
    fn anchor_of_group_is_an_anchor() {
        // Whatever anchor_mask returns must satisfy is_anchor.
        let skewed: HashSet<u32> = [0b0000u32, 0b0001, 0b0100, 0b0101].into_iter().collect();
        let oracle = |m: Mask| skewed.contains(&m.0);
        for h in (0u32..16).map(Mask) {
            if let Some(a) = anchor_mask(h, oracle) {
                assert!(is_anchor(a, oracle), "h={h:?} a={a:?}");
                assert!(a.is_subset_of(h));
            }
        }
    }

    #[test]
    fn each_group_assigned_to_exactly_one_mapper_anchor() {
        // For a fixed skew profile, every non-skewed group's assigned anchor
        // is among the anchors the mapper actually emits.
        let d = 4;
        let skewed: HashSet<u32> = [0b0000u32, 0b0010, 0b1000, 0b1010].into_iter().collect();
        let oracle = |m: Mask| skewed.contains(&m.0);
        let anchors: HashSet<u32> = simulate_mapper_anchors(d, &skewed)
            .into_iter()
            .map(|m| m.0)
            .collect();
        for h in (0u32..16).map(Mask) {
            if !oracle(h) {
                let a = anchor_mask(h, oracle).unwrap();
                assert!(
                    anchors.contains(&a.0),
                    "group {h:?} assigned to non-anchor {a:?}"
                );
            }
        }
    }
}
