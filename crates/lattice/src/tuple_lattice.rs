//! The tuple lattice (Definition 2.4).

use spcube_common::{Group, Mask, Tuple};

use crate::bfs::BfsOrder;

/// The lattice of all projections of one tuple — exactly the c-groups the
/// tuple contributes to (Figure 2 of the paper).
///
/// The lattice is virtual: nodes are materialized on demand as [`Group`]s
/// from the shared [`BfsOrder`], so walking a tuple's lattice allocates only
/// the groups actually inspected. A `marked` bitset supports the mapper's
/// "mark node and its ancestors" bookkeeping from Algorithm 3.
#[derive(Debug)]
pub struct TupleLattice<'a> {
    tuple: &'a Tuple,
    bfs: &'a BfsOrder,
    marked: MarkBits,
}

/// Mark bitset over the `2^d` lattice nodes. Inline `u64` for `d <= 6`
/// (the common case — the paper's cubes have 4 dimensions), heap-allocated
/// for larger `d`.
#[derive(Debug, Clone)]
enum MarkBits {
    Small(u64),
    Large(Vec<u64>),
}

impl MarkBits {
    fn new(d: usize) -> MarkBits {
        if d <= 6 {
            MarkBits::Small(0)
        } else {
            MarkBits::Large(vec![0u64; (1usize << d).div_ceil(64)])
        }
    }

    #[inline]
    fn get(&self, bit: u32) -> bool {
        match self {
            MarkBits::Small(b) => b & (1u64 << bit) != 0,
            MarkBits::Large(v) => v[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0,
        }
    }

    #[inline]
    fn set(&mut self, bit: u32) {
        match self {
            MarkBits::Small(b) => *b |= 1u64 << bit,
            MarkBits::Large(v) => v[(bit / 64) as usize] |= 1u64 << (bit % 64),
        }
    }
}

impl<'a> TupleLattice<'a> {
    /// Wrap a tuple. `bfs` must have been built for the tuple's arity.
    pub fn new(tuple: &'a Tuple, bfs: &'a BfsOrder) -> TupleLattice<'a> {
        assert_eq!(tuple.arity(), bfs.dims(), "BFS order arity mismatch");
        TupleLattice {
            tuple,
            bfs,
            marked: MarkBits::new(bfs.dims()),
        }
    }

    /// The node (c-group) of this tuple at `mask`.
    pub fn node(&self, mask: Mask) -> Group {
        Group::of_tuple(self.tuple, mask)
    }

    /// All nodes bottom-up in BFS order.
    pub fn nodes_bottom_up(&self) -> impl Iterator<Item = Group> + '_ {
        self.bfs.order().iter().map(move |&m| self.node(m))
    }

    /// Whether `mask` is marked as processed.
    #[inline]
    pub fn is_marked(&self, mask: Mask) -> bool {
        self.marked.get(mask.0)
    }

    /// Mark a single node.
    #[inline]
    pub fn mark(&mut self, mask: Mask) {
        self.marked.set(mask.0);
    }

    /// Mark a node and all of its ancestors (supersets), the recursive
    /// marking of Algorithm 3 line 12.
    pub fn mark_with_ancestors(&mut self, mask: Mask) {
        for sup in mask.supersets(self.bfs.dims()) {
            self.mark(sup);
        }
    }

    /// Next unmarked mask in BFS order at or after `start_rank`; returns the
    /// mask and its rank. This is `NextUnmarkedBFS` from Algorithm 3.
    pub fn next_unmarked(&self, start_rank: u32) -> Option<(Mask, u32)> {
        self.bfs.order()[start_rank as usize..]
            .iter()
            .enumerate()
            .find(|(_, m)| !self.is_marked(**m))
            .map(|(off, m)| (*m, start_rank + off as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcube_common::Value;

    fn t() -> Tuple {
        Tuple::new(
            vec![Value::str("laptop"), Value::str("Rome"), Value::Int(2012)],
            2000.0,
        )
    }

    #[test]
    fn nodes_are_all_projections() {
        let bfs = BfsOrder::new(3);
        let tup = t();
        let l = TupleLattice::new(&tup, &bfs);
        let nodes: Vec<Group> = l.nodes_bottom_up().collect();
        assert_eq!(nodes.len(), 8);
        assert_eq!(nodes[0], Group::apex());
        assert_eq!(nodes[7].display(3), "(laptop,Rome,2012)");
    }

    #[test]
    fn marking_and_next_unmarked() {
        let bfs = BfsOrder::new(3);
        let tup = t();
        let mut l = TupleLattice::new(&tup, &bfs);
        assert_eq!(l.next_unmarked(0).unwrap().0, Mask::EMPTY);
        l.mark(Mask::EMPTY);
        let (m, rank) = l.next_unmarked(0).unwrap();
        assert_eq!(m, Mask(0b001));
        assert_eq!(rank, 1);
    }

    #[test]
    fn mark_with_ancestors_marks_all_supersets() {
        let bfs = BfsOrder::new(3);
        let tup = t();
        let mut l = TupleLattice::new(&tup, &bfs);
        l.mark_with_ancestors(Mask(0b001));
        for sup in Mask(0b001).supersets(3) {
            assert!(l.is_marked(sup));
        }
        assert!(!l.is_marked(Mask(0b010)));
        assert!(!l.is_marked(Mask(0b110)));
        assert!(!l.is_marked(Mask::EMPTY));
    }

    #[test]
    fn exhausted_when_all_marked() {
        let bfs = BfsOrder::new(2);
        let tup = Tuple::new(vec![Value::Int(1), Value::Int(2)], 0.0);
        let mut l = TupleLattice::new(&tup, &bfs);
        l.mark_with_ancestors(Mask::EMPTY); // marks everything
        assert!(l.next_unmarked(0).is_none());
    }
}
