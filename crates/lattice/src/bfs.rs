//! The canonical bottom-up BFS order over cuboid masks.
//!
//! The SP-Cube mapper traverses each tuple's lattice "bottom up, in BFS
//! order" (Algorithm 3, line 5): level 0 is the apex `(*, …, *)`, level `l`
//! contains the masks of arity `l`. Within a level the paper leaves the
//! order unspecified; we fix it to ascending mask value so that mappers and
//! reducers — which never communicate beyond the shuffle — agree exactly on
//! anchor assignment.

use spcube_common::Mask;

/// Precomputed BFS order for a fixed dimensionality `d`.
///
/// `order()[i]` is the i-th mask visited; `rank(mask)` inverts it. Building
/// the order is `O(2^d log 2^d)` once; lookups are `O(1)`.
#[derive(Debug, Clone)]
pub struct BfsOrder {
    d: usize,
    order: Vec<Mask>,
    rank: Vec<u32>,
}

impl BfsOrder {
    /// Build the BFS order for `d` dimensions.
    pub fn new(d: usize) -> BfsOrder {
        assert!(d <= Mask::MAX_DIMS);
        let n = 1usize << d;
        let mut order: Vec<Mask> = (0..n as u32).map(Mask).collect();
        order.sort_by_key(|m| (m.arity(), m.0));
        let mut rank = vec![0u32; n];
        for (i, m) in order.iter().enumerate() {
            rank[m.0 as usize] = i as u32;
        }
        BfsOrder { d, order, rank }
    }

    /// Dimensionality this order was built for.
    pub fn dims(&self) -> usize {
        self.d
    }

    /// All masks in BFS (bottom-up) order.
    pub fn order(&self) -> &[Mask] {
        &self.order
    }

    /// Position of `mask` in the BFS order.
    #[inline]
    pub fn rank(&self, mask: Mask) -> u32 {
        self.rank[mask.0 as usize]
    }

    /// Compare two masks by BFS position.
    #[inline]
    pub fn cmp(&self, a: Mask, b: Mask) -> std::cmp::Ordering {
        self.rank(a).cmp(&self.rank(b))
    }
}

/// Standalone BFS comparison key for a mask — `(arity, mask)` ascending.
/// Equivalent to [`BfsOrder::rank`] ordering without the precomputed table;
/// useful when `d` is small or the order object is not at hand.
#[inline]
pub fn bfs_key(mask: Mask) -> (u32, u32) {
    (mask.arity(), mask.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_by_arity_then_value() {
        let o = BfsOrder::new(3);
        let masks: Vec<u32> = o.order().iter().map(|m| m.0).collect();
        assert_eq!(
            masks,
            vec![0b000, 0b001, 0b010, 0b100, 0b011, 0b101, 0b110, 0b111]
        );
    }

    #[test]
    fn rank_inverts_order() {
        let o = BfsOrder::new(4);
        for (i, m) in o.order().iter().enumerate() {
            assert_eq!(o.rank(*m) as usize, i);
        }
    }

    #[test]
    fn apex_is_first_full_is_last() {
        let o = BfsOrder::new(5);
        assert_eq!(o.order()[0], Mask::EMPTY);
        assert_eq!(*o.order().last().unwrap(), Mask::full(5));
    }

    #[test]
    fn bfs_key_agrees_with_rank() {
        let o = BfsOrder::new(4);
        for &a in o.order() {
            for &b in o.order() {
                assert_eq!(o.cmp(a, b), bfs_key(a).cmp(&bfs_key(b)));
            }
        }
    }

    #[test]
    fn descendants_precede_ancestors() {
        // Strict subsets always come earlier in BFS order (fewer bits).
        let o = BfsOrder::new(4);
        for &m in o.order() {
            for sub in m.subsets() {
                if sub != m {
                    assert!(o.rank(sub) < o.rank(m));
                }
            }
        }
    }

    #[test]
    fn zero_dims() {
        let o = BfsOrder::new(0);
        assert_eq!(o.order(), &[Mask::EMPTY]);
    }
}
