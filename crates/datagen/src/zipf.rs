//! Zipf sampling and the gen-zipf dataset.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spcube_common::{Relation, Schema, Value};

/// A Zipf(N, s) sampler over `{1, …, N}`: value `r` has probability
/// proportional to `1 / r^s`. Implemented with a precomputed CDF and binary
/// search — exact, and fast enough for millions of draws at the domain
/// sizes used here (the paper uses N = 1000, s = 1.1).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` elements with exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw one value in `1..=n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) + 1
    }

    /// Exact probability of value `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&r));
        if r == 1 {
            self.cdf[0]
        } else {
            self.cdf[r - 1] - self.cdf[r - 2]
        }
    }
}

/// The paper's gen-zipf dataset (Section 6.2): `d >= 2` dimensions, the
/// first two drawn from Zipf(1000, 1.1), the rest uniform over 1000 values;
/// all attributes independent. The paper's instance has `d = 4`.
pub fn gen_zipf(n: usize, d: usize, seed: u64) -> Relation {
    assert!(d >= 2, "gen-zipf needs at least the two Zipf attributes");
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(1000, 1.1);
    let mut rel = Relation::empty(Schema::synthetic(d));
    for _ in 0..n {
        let mut dims = Vec::with_capacity(d);
        dims.push(Value::Int(zipf.sample(&mut rng) as i64));
        dims.push(Value::Int(zipf.sample(&mut rng) as i64));
        for _ in 2..d {
            dims.push(Value::Int(rng.gen_range(1..=1000)));
        }
        rel.push_row(dims, 1.0);
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (1..=100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn head_is_heavier_than_tail() {
        let z = Zipf::new(1000, 1.1);
        assert!(z.pmf(1) > z.pmf(2));
        assert!(z.pmf(2) > z.pmf(100));
        assert!(z.pmf(1) > 0.1, "rank 1 of Zipf(1000,1.1) carries >10%");
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(50, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let draws = 200_000;
        let mut counts = vec![0u32; 51];
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for r in [1usize, 2, 5, 10] {
            let emp = counts[r] as f64 / draws as f64;
            let exp = z.pmf(r);
            assert!((emp - exp).abs() < 0.01, "rank {r}: {emp} vs {exp}");
        }
    }

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(10, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = z.sample(&mut rng);
            assert!((1..=10).contains(&v));
        }
    }

    #[test]
    fn gen_zipf_shape_and_determinism() {
        let a = gen_zipf(5_000, 4, 99);
        let b = gen_zipf(5_000, 4, 99);
        assert_eq!(a, b, "deterministic in the seed");
        assert_eq!(a.len(), 5_000);
        assert_eq!(a.arity(), 4);
        // Zipf attributes concentrate: value 1 of dim 0 is frequent.
        let ones = a
            .tuples()
            .iter()
            .filter(|t| t.dims[0] == Value::Int(1))
            .count();
        assert!(ones > 5_000 / 20, "zipf head missing: {ones}");
        // Uniform attributes do not concentrate anywhere near as much.
        let max_uniform = (1..=1000)
            .map(|v| {
                a.tuples()
                    .iter()
                    .filter(|t| t.dims[2] == Value::Int(v))
                    .count()
            })
            .max()
            .unwrap();
        assert!(max_uniform < ones / 2);
    }

    #[test]
    #[should_panic(expected = "at least the two Zipf")]
    fn gen_zipf_needs_two_dims() {
        gen_zipf(10, 1, 0);
    }
}
