//! The gen-binomial dataset.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spcube_common::{Relation, Schema, Value};

/// The paper's gen-binomial generator (Section 6.2), verbatim:
///
/// > "With probability p, we uniformly pick a number i ∈ 1, …, 20, and
/// > create a tuple having i in all of its attributes (namely the tuples
/// > (1, 1, …, 1), (2, 2, …, 2), and so on). With probability 1 − p, we
/// > draw each attribute uniformly as a 32-bit integer."
///
/// A fraction `p` of the tuples therefore contributes to skews in every
/// cuboid, while the rest almost surely form singleton groups.
pub fn gen_binomial(n: usize, d: usize, p: f64, seed: u64) -> Relation {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(d >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::empty(Schema::synthetic(d));
    for _ in 0..n {
        let dims = if rng.gen::<f64>() < p {
            let i = rng.gen_range(1..=20i64);
            vec![Value::Int(i); d]
        } else {
            (0..d)
                .map(|_| Value::Int(rng.gen::<u32>() as i64))
                .collect()
        };
        rel.push_row(dims, 1.0);
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_fraction(rel: &Relation) -> f64 {
        let hits = rel
            .tuples()
            .iter()
            .filter(|t| {
                let first = &t.dims[0];
                matches!(first, Value::Int(1..=20)) && t.dims.iter().all(|v| v == first)
            })
            .count();
        hits as f64 / rel.len() as f64
    }

    #[test]
    fn p_zero_has_no_patterns() {
        let r = gen_binomial(20_000, 4, 0.0, 1);
        // A uniform 32-bit 4-dim tuple is all-equal-in-1..=20 with
        // probability ~0.
        assert_eq!(pattern_fraction(&r), 0.0);
    }

    #[test]
    fn p_one_is_all_patterns() {
        let r = gen_binomial(10_000, 4, 1.0, 2);
        assert_eq!(pattern_fraction(&r), 1.0);
        // All 20 patterns occur.
        let distinct: std::collections::HashSet<_> =
            r.tuples().iter().map(|t| t.dims[0].clone()).collect();
        assert_eq!(distinct.len(), 20);
    }

    #[test]
    fn intermediate_p_matches() {
        for p in [0.1, 0.4, 0.75] {
            let r = gen_binomial(40_000, 4, p, 3);
            let f = pattern_fraction(&r);
            assert!((f - p).abs() < 0.02, "p={p}, measured {f}");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            gen_binomial(1000, 3, 0.3, 42),
            gen_binomial(1000, 3, 0.3, 42)
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_p_rejected() {
        gen_binomial(10, 2, 1.5, 0);
    }
}
