//! The paper's running example as a generator: product sales per city and
//! year, with configurable planted skews — used by the runnable examples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spcube_common::{Relation, Schema, Value};

const PRODUCTS: &[&str] = &[
    "laptop",
    "printer",
    "keyboard",
    "mouse",
    "television",
    "toaster",
    "air-conditioner",
    "monitor",
    "camera",
    "speaker",
];

const CITIES: &[&str] = &[
    "Rome",
    "Paris",
    "London",
    "Berlin",
    "Madrid",
    "Vienna",
    "Prague",
    "Amsterdam",
];

/// Generate `n` sales records over `(name, city, year)` with measure
/// `sales`, echoing Example 2.1. A `skew` fraction of the records is
/// concentrated on laptops sold in 2012 (the paper's own example of a
/// skewed c-group: "if an extremely large number of laptops were sold in
/// 2012…"), spread across cities.
pub fn retail(n: usize, skew: f64, seed: u64) -> Relation {
    assert!((0.0..=1.0).contains(&skew));
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::new(["name", "city", "year"], "sales").unwrap();
    let mut rel = Relation::empty(schema);
    for _ in 0..n {
        let (name, city, year) = if rng.gen::<f64>() < skew {
            ("laptop", CITIES[rng.gen_range(0..CITIES.len())], 2012)
        } else {
            (
                PRODUCTS[rng.gen_range(0..PRODUCTS.len())],
                CITIES[rng.gen_range(0..CITIES.len())],
                rng.gen_range(2000..=2015),
            )
        };
        rel.push_row(
            vec![Value::str(name), Value::str(city), Value::Int(year)],
            rng.gen_range(1..=5000) as f64,
        );
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laptop_2012_is_concentrated() {
        let rel = retail(10_000, 0.5, 1);
        let hot = rel
            .tuples()
            .iter()
            .filter(|t| t.dims[0] == Value::str("laptop") && t.dims[2] == Value::Int(2012))
            .count();
        assert!(hot >= 5_000 - 300, "skew fraction missing: {hot}");
    }

    #[test]
    fn no_skew_is_roughly_uniform() {
        let rel = retail(16_000, 0.0, 2);
        let laptops = rel
            .tuples()
            .iter()
            .filter(|t| t.dims[0] == Value::str("laptop"))
            .count();
        // 1/10 of products, within generous tolerance.
        assert!((laptops as f64 - 1600.0).abs() < 300.0, "{laptops}");
    }

    #[test]
    fn schema_matches_running_example() {
        let rel = retail(10, 0.1, 3);
        assert_eq!(rel.schema().dims(), &["name", "city", "year"]);
        assert_eq!(rel.schema().measure(), "sales");
    }
}
