//! Relations for the traffic-bound theory of Section 5.2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spcube_common::{Relation, Schema, Value};

/// The Theorem 5.3 adversarial relation forcing Θ(2^d · n) SP-Cube traffic.
///
/// Construction (from the paper's proof): let `w = m + 1`; for every set
/// `s` of `d/2` of the `d` dimensions, add `w` identical tuples with value
/// 1 in the dimensions of `s` and 0 elsewhere. Every level-`d/2` cuboid
/// then contains exactly one skewed group, while no level-`d/2 + 1` cuboid
/// does — so for every tuple every (d/2+1)-subset node is an unmarked,
/// non-skewed anchor and the mapper emits Θ(2^d) records per tuple.
pub fn adversarial_half_ones(d: usize, m: usize) -> Relation {
    assert!(d >= 2 && d.is_multiple_of(2), "theorem uses even d");
    let w = m + 1;
    let half = d / 2;
    let mut rel = Relation::empty(Schema::synthetic(d));
    // Enumerate all d-bit masks with exactly d/2 bits set.
    for s in 0u32..(1u32 << d) {
        if s.count_ones() as usize != half {
            continue;
        }
        for _ in 0..w {
            let dims = (0..d)
                .map(|i| Value::Int(if s & (1 << i) != 0 { 1 } else { 0 }))
                .collect();
            rel.push_row(dims, 1.0);
        }
    }
    rel
}

/// A benign relation for Proposition 5.5: independent attributes drawn from
/// a huge domain, so the only skewed c-group is the apex. Every tuple's
/// anchors are then the `d` single-attribute nodes and SP-Cube ships each
/// tuple at most `d` times — `O(d^2 · n)` bytes of traffic.
pub fn apex_only_skew(n: usize, d: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::empty(Schema::synthetic(d));
    for _ in 0..n {
        rel.push_row(
            (0..d)
                .map(|_| Value::Int(rng.gen::<u32>() as i64))
                .collect(),
            1.0,
        );
    }
    rel
}

/// A rigorous exponential-traffic workload (our strengthening of Theorem
/// 5.3's construction): independent uniform attributes over a domain of
/// size `domain` chosen so that, for a skew threshold `m`, every c-group of
/// arity ≤ `d/2` is skewed (`n / domain^(d/2) > m`) while every c-group of
/// arity `d/2 + 1` is not (`n / domain^(d/2+1) ≤ m`). Each tuple's anchors
/// are then all `C(d, d/2+1) = Θ(2^d/√d)` nodes of that level, forcing
/// exponentially many emissions per tuple.
///
/// Returns the relation and the domain size chosen. Pick `n` and `m` so a
/// valid domain `>= 2` exists, i.e. `n/m > 2^(d/2)`.
pub fn uniform_small_domain(n: usize, d: usize, m: usize, seed: u64) -> (Relation, usize) {
    assert!(d >= 2 && d.is_multiple_of(2), "use even d");
    let ratio = n as f64 / m as f64;
    // Largest domain with domain^(d/2) < ratio (levels ≤ d/2 skewed).
    let domain = (ratio.powf(1.0 / (d as f64 / 2.0)).ceil() as usize)
        .saturating_sub(1)
        .max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::empty(Schema::synthetic(d));
    for _ in 0..n {
        rel.push_row(
            (0..d)
                .map(|_| Value::Int(rng.gen_range(0..domain as i64)))
                .collect(),
            1.0,
        );
    }
    (rel, domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcube_common::Mask;
    use std::collections::HashMap;

    #[test]
    fn half_ones_shape() {
        let d = 4;
        let m = 10;
        let rel = adversarial_half_ones(d, m);
        // C(4,2) = 6 patterns × (m+1) copies.
        assert_eq!(rel.len(), 6 * 11);
        // Every level-d/2 cuboid contains a skewed group — the paper's
        // claim ("each cuboid in level d/2 contains a skewed group").
        for mask in Mask::full(d).subsets().filter(|ma| ma.arity() == 2) {
            let mut counts: HashMap<Vec<Value>, usize> = HashMap::new();
            for t in rel.tuples() {
                *counts.entry(t.project(mask)).or_insert(0) += 1;
            }
            assert!(counts.values().any(|&c| c > m), "mask {mask:?}");
        }
        // At level d/2+1 no two distinct patterns share a projection
        // ("there are no s1, s2 ∈ S that share the same values in any
        // subset of d/2+1 attributes"): every group there has exactly
        // w = m+1 members, one pattern's worth.
        for mask in Mask::full(d).subsets().filter(|ma| ma.arity() == 3) {
            let mut counts: HashMap<Vec<Value>, usize> = HashMap::new();
            for t in rel.tuples() {
                *counts.entry(t.project(mask)).or_insert(0) += 1;
            }
            assert!(
                counts.values().all(|&c| c == m + 1),
                "mask {mask:?}: {counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "even d")]
    fn odd_d_rejected() {
        adversarial_half_ones(3, 5);
    }

    #[test]
    fn uniform_small_domain_separates_levels() {
        let n = 40_000;
        let d = 4;
        let m = 200;
        let (rel, domain) = uniform_small_domain(n, d, m, 5);
        assert!(domain >= 2);
        // Expected group sizes: level 2 ≈ n/domain² > m, level 3 ≈
        // n/domain³ ≤ m. Verify empirically on one mask per level.
        let level2 = Mask(0b0011);
        let mut counts: HashMap<Vec<Value>, usize> = HashMap::new();
        for t in rel.tuples() {
            *counts.entry(t.project(level2)).or_insert(0) += 1;
        }
        let skewed2 = counts.values().filter(|&&c| c > m).count();
        assert!(
            skewed2 > counts.len() / 2,
            "most level-2 groups skewed: {skewed2}/{}",
            counts.len()
        );
        let level3 = Mask(0b0111);
        let mut counts3: HashMap<Vec<Value>, usize> = HashMap::new();
        for t in rel.tuples() {
            *counts3.entry(t.project(level3)).or_insert(0) += 1;
        }
        let skewed3 = counts3.values().filter(|&&c| c > m).count();
        assert!(
            skewed3 * 10 < counts3.len(),
            "level-3 groups mostly non-skewed: {skewed3}/{}",
            counts3.len()
        );
    }

    #[test]
    fn apex_only_has_no_other_skews() {
        let n = 5000;
        let rel = apex_only_skew(n, 3, 9);
        let m = n / 10;
        for mask in Mask::full(3).subsets().filter(|ma| ma.arity() >= 1) {
            let mut counts: HashMap<Vec<Value>, usize> = HashMap::new();
            for t in rel.tuples() {
                *counts.entry(t.project(mask)).or_insert(0) += 1;
            }
            assert!(
                counts.values().all(|&c| c <= m),
                "unexpected skew in {mask:?}"
            );
        }
    }
}
