//! Profile-matched substitutes for the paper's two real datasets.
//!
//! The originals (Wikipedia Traffic Statistics V3, 1.usa.gov clicks) are
//! not redistributable here, so these generators reproduce the *published
//! profiles* the paper reports for them — dimensionality, the count and
//! relative size of skewed c-groups, and the distinct-group-to-tuple ratio
//! — which are the properties the compared algorithms are sensitive to.
//! See DESIGN.md §4 for the substitution argument.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spcube_common::{Relation, Schema, Value};

use crate::zipf::Zipf;

/// Wikipedia-Traffic-like workload.
///
/// Paper profile (Section 6.1): 4 dimensions; ~180 M c-groups for 300 M
/// rows (0.6 groups/tuple); ~50 skewed c-groups of 5–30 % of `n` each.
///
/// Construction: dimensions `(project, page, hour, agent)`.
/// 45 % of rows hit one of 12 hot `(project, page)` pairs (Zipf-weighted,
/// so pair shares range ~3–15 %); several hot pairs share a project, so
/// `(project,*,*,*)`, `(*,page,*,*)` and `(project,page,*,*)` groups are
/// skewed, as are the 24 `(*,*,hour,*)` groups and the apex — a few dozen
/// skewed groups in total, sized 4–30 % of `n` for thresholds around
/// `n/100`. The remaining 55 % of rows have near-unique pages, giving the
/// long singleton tail that drives the c-group count toward `0.6 · n`.
pub fn wikipedia_like(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::new(["project", "page", "hour", "agent"], "views").unwrap();
    let mut rel = Relation::empty(schema);
    // 12 hot (project, page) pairs over 5 projects, Zipf-weighted.
    let hot_pairs: Vec<(i64, i64)> = (0..12).map(|i| ((i % 5) as i64, 1000 + i as i64)).collect();
    let hot_zipf = Zipf::new(hot_pairs.len(), 0.7);
    for _ in 0..n {
        let (project, page) = if rng.gen::<f64>() < 0.45 {
            hot_pairs[hot_zipf.sample(&mut rng) - 1]
        } else {
            // Long tail: many projects, near-unique pages.
            (rng.gen_range(0..40), rng.gen::<u32>() as i64)
        };
        rel.push_row(
            vec![
                Value::Int(project),
                Value::Int(page),
                Value::Int(rng.gen_range(0..24)),
                Value::Int(rng.gen_range(0..1000)),
            ],
            rng.gen_range(1..50) as f64,
        );
    }
    rel
}

/// USAGOV-click-like workload.
///
/// Paper profile (Section 6.1): the cube is built over 4 of 15 attributes;
/// ~30 skewed c-groups of 6–25 % of `n`; ~20 M c-groups for 30 M rows
/// (0.66 groups/tuple). We materialize the four cube dimensions
/// `(agency, url, country, referrer)`: heavy Zipf heads on
/// `agency`/`country`, six hot shortlinks on `url` (each ~6 % of clicks)
/// over a near-unique tail, and a broad Zipf `referrer` — together a few
/// dozen skewed groups in the 6–25 % band over a long singleton tail.
pub fn usagov_like(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::new(["agency", "url", "country", "referrer"], "clicks").unwrap();
    let mut rel = Relation::empty(schema);
    let agency_zipf = Zipf::new(300, 1.25);
    let country_zipf = Zipf::new(120, 1.45);
    let referrer_zipf = Zipf::new(2000, 1.1);
    for _ in 0..n {
        // url: hot shortlink with prob 0.35, else near-unique.
        let url = if rng.gen::<f64>() < 0.35 {
            rng.gen_range(0..6)
        } else {
            1_000_000 + rng.gen::<u32>() as i64
        };
        rel.push_row(
            vec![
                Value::Int(agency_zipf.sample(&mut rng) as i64),
                Value::Int(url),
                Value::Int(country_zipf.sample(&mut rng) as i64),
                Value::Int(referrer_zipf.sample(&mut rng) as i64),
            ],
            1.0,
        );
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Count skewed c-groups (over all cuboids) and their size range, for a
    /// threshold `m`, the profile quantities the paper reports.
    fn skew_profile(rel: &Relation, m: usize) -> (usize, f64, f64) {
        use spcube_common::Mask;
        let n = rel.len() as f64;
        let mut skew_count = 0;
        let (mut min_frac, mut max_frac) = (1.0f64, 0.0f64);
        for mask in Mask::full(rel.arity()).subsets() {
            let mut counts: HashMap<Vec<Value>, usize> = HashMap::new();
            for t in rel.tuples() {
                *counts.entry(t.project(mask)).or_insert(0) += 1;
            }
            for (_, c) in counts {
                if c > m {
                    skew_count += 1;
                    let f = c as f64 / n;
                    min_frac = min_frac.min(f);
                    max_frac = max_frac.max(f);
                }
            }
        }
        (skew_count, min_frac, max_frac)
    }

    #[test]
    fn wikipedia_profile_matches_paper() {
        let n = 60_000;
        let rel = wikipedia_like(n, 11);
        assert_eq!(rel.arity(), 4);
        // Threshold ~ n/100 (DESIGN.md's scaled Wikipedia experiment).
        let (skews, _min_f, max_f) = skew_profile(&rel, n / 100 * 3);
        assert!(
            (20..=90).contains(&skews),
            "expect a few dozen skewed groups, got {skews}"
        );
        assert!(max_f > 0.2, "largest skews reach tens of percent: {max_f}");
        // Long tail: many distinct full-cuboid groups.
        let distinct: std::collections::HashSet<_> = rel
            .tuples()
            .iter()
            .map(|t| t.project(spcube_common::Mask::full(4)))
            .collect();
        assert!(
            distinct.len() > n / 3,
            "long tail missing: {}",
            distinct.len()
        );
    }

    #[test]
    fn usagov_profile_matches_paper() {
        let n = 60_000;
        let rel = usagov_like(n, 13);
        assert_eq!(rel.arity(), 4);
        let (skews, _min_f, max_f) = skew_profile(&rel, n / 16);
        assert!((10..=80).contains(&skews), "got {skews} skewed groups");
        assert!(max_f > 0.15, "head groups hold >15%: {max_f}");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(wikipedia_like(2000, 5), wikipedia_like(2000, 5));
        assert_eq!(usagov_like(2000, 5), usagov_like(2000, 5));
        // And seed-sensitive.
        assert_ne!(wikipedia_like(2000, 5), wikipedia_like(2000, 6));
    }
}
