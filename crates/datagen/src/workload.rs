//! Zipf-skewed query workloads for the serving benchmark.
//!
//! A serving layer lives or dies by its cache, and a cache lives or dies
//! by the access skew — real OLAP dashboards hammer a handful of hot
//! group-bys while the long tail of cuboids is touched rarely. This
//! module generates that pattern: cuboids are ranked in a seeded random
//! order and each query draws its cuboid from `Zipf(2^d, skew)` over the
//! ranking, so `skew` is a direct dial on how concentrated the workload
//! is (≈0 → uniform across cuboids, cold cache; large → a few hot
//! cuboids, hot cache).
//!
//! Query keys are projected from tuples sampled uniformly out of the
//! relation, so point lookups target groups that exist; the query *kind*
//! is drawn from a fixed mix of point / slice / top-k / roll-up / size
//! probes, mirroring the request types [`CubeServer`] serves.
//!
//! The generator speaks only `spcube-common` types so it works against
//! any backend; the bench layer converts [`QuerySpec`] into server
//! requests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spcube_common::{Group, Mask, Relation, Value};

use crate::zipf::Zipf;

/// One backend-agnostic OLAP query.
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySpec {
    /// A single group's aggregate.
    Point {
        /// Target cuboid.
        mask: Mask,
        /// Full group key.
        key: Vec<Value>,
    },
    /// All groups of `mask` with `dim = value`.
    Slice {
        /// Target cuboid.
        mask: Mask,
        /// Sliced dimension (grouped in `mask`).
        dim: usize,
        /// Dimension value to match.
        value: Value,
    },
    /// The `n` largest groups of `mask` by scalar aggregate.
    TopK {
        /// Target cuboid.
        mask: Mask,
        /// How many groups to rank.
        n: usize,
    },
    /// Drop `dim` from the group and look the coarser group up.
    RollUp {
        /// The fine group.
        group: Group,
        /// Dimension to drop (grouped in the group's mask).
        dim: usize,
    },
    /// Number of groups in `mask`.
    CuboidLen {
        /// Target cuboid.
        mask: Mask,
    },
}

impl QuerySpec {
    /// The cuboid this query reads (for roll-ups, the *coarse* one that
    /// actually gets probed).
    pub fn target_mask(&self) -> Mask {
        match self {
            QuerySpec::Point { mask, .. }
            | QuerySpec::Slice { mask, .. }
            | QuerySpec::TopK { mask, .. }
            | QuerySpec::CuboidLen { mask } => *mask,
            QuerySpec::RollUp { group, dim } => group.mask.without(*dim),
        }
    }
}

/// Generate `count` queries against the cube of `rel`, with cuboid
/// popularity following `Zipf(2^d, skew)` over a seeded cuboid ranking.
/// `skew <= 0` degenerates to a uniform workload. Deterministic in
/// `seed`.
pub fn gen_query_workload(rel: &Relation, count: usize, skew: f64, seed: u64) -> Vec<QuerySpec> {
    let d = rel.arity();
    assert!(
        !rel.tuples().is_empty(),
        "query workload needs a non-empty relation"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // Seeded random ranking of all cuboids: rank 1 = hottest.
    let mut ranked: Vec<Mask> = Mask::full(d).subsets().collect();
    for i in (1..ranked.len()).rev() {
        let j = rng.gen_range(0..=i);
        ranked.swap(i, j);
    }
    let zipf = if skew > 0.0 {
        Some(Zipf::new(ranked.len(), skew))
    } else {
        None
    };

    let tuples = rel.tuples();
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let mask = match &zipf {
            Some(z) => ranked[z.sample(&mut rng) - 1],
            None => ranked[rng.gen_range(0..ranked.len())],
        };
        let t = &tuples[rng.gen_range(0..tuples.len())];
        let group = Group::of_tuple(t, mask);
        let kind = rng.gen_range(0u32..100);
        let dims: Vec<usize> = mask.dims().collect();
        let spec = if kind < 40 {
            QuerySpec::Point {
                mask,
                key: group.key.to_vec(),
            }
        } else if kind < 65 && !dims.is_empty() {
            let dim = dims[rng.gen_range(0..dims.len())];
            let slot = dims.iter().position(|&i| i == dim).expect("dim from mask");
            QuerySpec::Slice {
                mask,
                dim,
                value: group.key[slot].clone(),
            }
        } else if kind < 80 {
            QuerySpec::TopK { mask, n: 10 }
        } else if kind < 90 && !dims.is_empty() {
            // Roll up probes mask-without-dim; keep the *fine* mask as the
            // drawn cuboid's parent so the popularity dial still applies
            // to what gets read.
            let dim = dims[rng.gen_range(0..dims.len())];
            let fine = Group::of_tuple(t, mask.with(dim));
            QuerySpec::RollUp { group: fine, dim }
        } else {
            QuerySpec::CuboidLen { mask }
        };
        out.push(spec);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zipf::gen_zipf;
    use std::collections::HashMap;

    #[test]
    fn deterministic_in_seed() {
        let rel = gen_zipf(500, 3, 7);
        let a = gen_query_workload(&rel, 200, 1.2, 42);
        let b = gen_query_workload(&rel, 200, 1.2, 42);
        assert_eq!(a, b);
        let c = gen_query_workload(&rel, 200, 1.2, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn skew_concentrates_target_cuboids() {
        let rel = gen_zipf(500, 3, 7);
        let concentration = |skew: f64| -> f64 {
            let w = gen_query_workload(&rel, 2000, skew, 11);
            let mut counts: HashMap<Mask, usize> = HashMap::new();
            for q in &w {
                *counts.entry(q.target_mask()).or_default() += 1;
            }
            let max = counts.values().copied().max().unwrap_or(0);
            max as f64 / w.len() as f64
        };
        let hot = concentration(2.0);
        let cold = concentration(0.0);
        assert!(
            hot > cold + 0.2,
            "skew 2.0 should concentrate traffic: hot {hot:.2} vs uniform {cold:.2}"
        );
    }

    #[test]
    fn generated_queries_are_well_formed() {
        let rel = gen_zipf(300, 4, 3);
        let d = rel.arity();
        for q in gen_query_workload(&rel, 500, 1.0, 5) {
            match q {
                QuerySpec::Point { mask, key } => {
                    assert_eq!(mask.arity() as usize, key.len());
                }
                QuerySpec::Slice { mask, dim, .. } => assert!(mask.contains(dim)),
                QuerySpec::TopK { mask, n } => {
                    assert!(n > 0);
                    assert!(mask.is_subset_of(Mask::full(d)));
                }
                QuerySpec::RollUp { group, dim } => {
                    assert!(group.mask.contains(dim));
                    assert!(group.mask.is_subset_of(Mask::full(d)));
                }
                QuerySpec::CuboidLen { mask } => {
                    assert!(mask.is_subset_of(Mask::full(d)));
                }
            }
        }
    }

    #[test]
    fn point_queries_hit_existing_groups() {
        let rel = gen_zipf(200, 3, 9);
        let cube = {
            // tiny naive cube by hand: count groups per mask via projection
            let mut groups: std::collections::HashSet<(Mask, Vec<Value>)> =
                std::collections::HashSet::new();
            for t in rel.tuples() {
                for mask in Mask::full(3).subsets() {
                    groups.insert((mask, Group::of_tuple(t, mask).key.to_vec()));
                }
            }
            groups
        };
        for q in gen_query_workload(&rel, 300, 1.5, 2) {
            if let QuerySpec::Point { mask, key } = q {
                assert!(
                    cube.contains(&(mask, key)),
                    "point query targets a live group"
                );
            }
        }
    }
}
