//! Synthetic dataset generators for the experiments.
//!
//! Two families come straight from Section 6.2 of the paper:
//!
//! * [`gen_binomial`] — with probability `p`, a tuple is one of 20 planted
//!   all-equal patterns `(i, i, …, i)`; otherwise every attribute is a
//!   uniform 32-bit integer. `p` dials the skewness (Figures 6 and 8).
//! * [`gen_zipf`] — two attributes from a Zipf(1000, 1.1) distribution and
//!   the rest uniform over 1000 values (Figure 7).
//!
//! Two more are profile-matched substitutes for the paper's real datasets,
//! which are not redistributable at reproduction scale (see DESIGN.md §4):
//!
//! * [`wikipedia_like`] — matches the reported Wikipedia Traffic Statistics
//!   profile: 4 dimensions, a long tail of nearly-unique groups (about 0.6
//!   distinct c-groups per tuple), and a few dozen skewed c-groups holding
//!   5–30 % of the tuples each.
//! * [`usagov_like`] — matches the USAGOV click-log profile: heavier
//!   low-cardinality dimensions, ~30 skewed groups of 6–25 % of the data.
//!
//! Finally, [`adversarial_half_ones`] builds the Theorem 5.3 relation that
//! forces Θ(2^d · n) SP-Cube traffic, [`apex_only_skew`] the benign
//! relation of Proposition 5.5, and [`retail()`](retail::retail) the paper's running example
//! (products × cities × years) used by the examples.
//!
//! Beyond relations, [`gen_query_workload`] generates Zipf-skewed OLAP
//! *query* workloads over a relation's cube — the read-side traffic for
//! the query-serving benchmark.
//!
//! All generators are deterministic in their seed.

pub mod adversarial;
pub mod binomial;
pub mod real_like;
pub mod retail;
pub mod workload;
pub mod zipf;

pub use adversarial::{adversarial_half_ones, apex_only_skew, uniform_small_domain};
pub use binomial::gen_binomial;
pub use real_like::{usagov_like, wikipedia_like};
pub use retail::retail;
pub use workload::{gen_query_workload, QuerySpec};
pub use zipf::{gen_zipf, Zipf};
