//! spcheck: the workspace static-analysis gate.
//!
//! Rust's type system cannot see three of this workspace's core
//! promises: that query-serving code never panics, that each on-disk
//! format constant is defined exactly once, and that nothing on an
//! output path depends on hasher state or the wall clock. spcheck makes
//! those promises machine-checkable. It walks every `.rs` file under the
//! workspace, scrubs comments/strings/`#[cfg(test)]` items with a small
//! hand-rolled lexer ([`lexer`]), runs five rules ([`rules`]) on what is
//! left, and reports findings ([`report`]) as text or `--json`.
//!
//! The binary is dependency-free on purpose: it must build in seconds and
//! run first in CI, before the much slower build-and-test steps.
//!
//! See `DESIGN.md` ("Error handling and determinism policy") for the
//! rationale behind each rule and `README.md` for the suppression
//! contract.

pub mod conc;
pub mod lexer;
pub mod model;
pub mod parse;
pub mod report;
pub mod rules;

use report::Finding;
use rules::MagicSite;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Directory components never audited: build output, VCS, vendored
/// shims, spcheck itself (its fixtures contain violations on purpose),
/// and integration tests/benches (test code may panic).
const SKIP_DIRS: &[&str] = &["target", ".git", "shims", "spcheck", "tests", "benches"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    // Deterministic walk order => deterministic finding order.
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// The full result of an spcheck run: the post-suppression findings and
/// the inferred workspace concurrency model (for `lockgraph` dumps).
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub model: model::Model,
}

/// Walk `root`, run every rule — the per-file R1/R3/R4/R5 scans, the
/// workspace-wide R2 single-source pass, and the two-pass concurrency
/// analysis behind R6–R9 — then apply each file's suppressions against
/// the pooled findings and return them sorted by (file, line, rule).
pub fn run_full(root: &Path) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    walk(root, &mut files)?;

    let mut findings = Vec::new();
    let mut magic_sites: Vec<MagicSite> = Vec::new();
    // Per-file suppressions, in walk order, for the final pass.
    let mut suppressions: Vec<(String, Vec<lexer::Suppression>)> = Vec::new();
    // (rel, scrubbed+blanked text) input for the concurrency parser.
    let mut parse_input: Vec<(String, String)> = Vec::new();

    for path in &files {
        let rel = relative(root, path);
        let src = std::fs::read_to_string(path)?;
        let mut scrubbed = lexer::scrub(&src);
        let test_ranges = lexer::blank_test_regions(&mut scrubbed.text);
        findings.extend(rules::check_file(
            &rel,
            &scrubbed,
            &test_ranges,
            &mut magic_sites,
        ));
        if !rules::in_scope(rules::Scope::ParseExempt, &rel) {
            parse_input.push((rel.clone(), scrubbed.text.clone()));
        }
        suppressions.push((rel, scrubbed.suppressions));
    }

    rules::check_single_source(&magic_sites, &mut findings);

    let model = model::build(parse::parse_workspace(&parse_input));
    conc::check(&model, &mut findings);

    // Suppressions apply last, against the complete per-file pool, so an
    // allow can cover a concurrency finding and unused-allow hints see
    // every finding in the file.
    let mut by_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in findings {
        by_file.entry(f.file.clone()).or_default().push(f);
    }
    let mut findings = Vec::new();
    for (rel, supp) in &suppressions {
        let pool = by_file.remove(rel).unwrap_or_default();
        findings.extend(rules::apply_suppressions(rel, supp, pool));
    }
    // Findings on paths without a walked file (e.g. `<workspace>`) have
    // no suppression surface; pass them through.
    for (_, pool) in by_file {
        findings.extend(pool);
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    Ok(Analysis { findings, model })
}

/// Walk `root`, run every rule, and return the findings sorted by
/// (file, line, rule). An empty vector means the gate passes.
pub fn run_check(root: &Path) -> std::io::Result<Vec<Finding>> {
    run_full(root).map(|a| a.findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    /// Build a throwaway tree under the OS temp dir. Each test uses its
    /// own subdirectory keyed by test name + pid so parallel test runs
    /// never collide.
    struct Fixture {
        root: PathBuf,
    }

    impl Fixture {
        fn new(tag: &str) -> Fixture {
            let root = std::env::temp_dir().join(format!("spcheck-{}-{}", tag, std::process::id()));
            let _ = fs::remove_dir_all(&root);
            fs::create_dir_all(&root).expect("create fixture root");
            Fixture { root }
        }

        fn write(&self, rel: &str, content: &str) {
            let path = self.root.join(rel);
            if let Some(parent) = path.parent() {
                fs::create_dir_all(parent).expect("create fixture dirs");
            }
            fs::write(path, content).expect("write fixture file");
        }

        /// A minimal tree satisfying R2 so single-source findings don't
        /// drown out what the test is about.
        fn with_format_consts(self) -> Fixture {
            self.write(
                "crates/common/src/codec.rs",
                "pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;\n\
                 pub const FNV_PRIME: u64 = 0x100_0000_01b3;\n",
            );
            self.write(
                "crates/core/src/sketch/mod.rs",
                "pub const MAGIC: &[u8; 5] = b\"SPSK1\";\n",
            );
            self.write(
                "crates/cubestore/src/segment.rs",
                "pub const MAGIC: &[u8; 5] = b\"CSEG1\";\n",
            );
            self.write(
                "crates/cubestore/src/manifest.rs",
                "pub const MAGIC: &[u8; 5] = b\"CMAN1\";\n",
            );
            self.write(
                "crates/cubestore/src/delta.rs",
                "pub const MAGIC: &[u8; 5] = b\"DSEG1\";\n",
            );
            self
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    #[test]
    fn clean_tree_passes() {
        let fx = Fixture::new("clean").with_format_consts();
        fx.write(
            "crates/mapreduce/src/engine.rs",
            "pub fn run() -> Result<(), ()> {\n    let xs = [1, 2];\n    let first = xs.first().copied().ok_or(())?;\n    let _ = first;\n    Ok(())\n}\n",
        );
        let findings = run_check(&fx.root).expect("run");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn seeded_violations_in_serving_path_are_found() {
        let fx = Fixture::new("seeded").with_format_consts();
        fx.write(
            "crates/mapreduce/src/engine.rs",
            "pub fn run(xs: &[u32], i: usize) -> u32 {\n    let a = xs[i];\n    let b = Some(a).unwrap();\n    if b == 0 { panic!(\"zero\"); }\n    b\n}\n",
        );
        let findings = run_check(&fx.root).expect("run");
        let rules: Vec<&str> = findings.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules, ["no_panic", "no_panic", "no_panic"], "{findings:?}");
        assert_eq!(findings[0].line, 2, "indexing");
        assert_eq!(findings[1].line, 3, "unwrap");
        assert_eq!(findings[2].line, 4, "panic!");
    }

    #[test]
    fn same_code_outside_serving_path_passes() {
        let fx = Fixture::new("nonserving").with_format_consts();
        fx.write(
            "crates/bench/src/runner.rs",
            "pub fn run(xs: &[u32], i: usize) -> u32 { xs[i] }\n",
        );
        let findings = run_check(&fx.root).expect("run");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn test_code_in_serving_file_is_exempt() {
        let fx = Fixture::new("testexempt").with_format_consts();
        fx.write(
            "crates/mapreduce/src/engine.rs",
            "pub fn run() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n",
        );
        let findings = run_check(&fx.root).expect("run");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn duplicate_magic_is_a_workspace_finding() {
        let fx = Fixture::new("dupmagic").with_format_consts();
        fx.write(
            "crates/cubestore/src/store.rs",
            "const ALSO: &[u8; 5] = b\"CSEG1\";\n",
        );
        let findings = run_check(&fx.root).expect("run");
        let dups: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "single_source_format")
            .collect();
        assert_eq!(dups.len(), 2, "{findings:?}");
        assert!(dups.iter().any(|f| f.file.contains("store.rs")));
        assert!(dups.iter().any(|f| f.file.contains("segment.rs")));
    }

    #[test]
    fn missing_fnv_const_is_reported() {
        let fx = Fixture::new("nofnv");
        fx.write(
            "crates/core/src/sketch/mod.rs",
            "pub const MAGIC: &[u8; 5] = b\"SPSK1\";\n",
        );
        fx.write(
            "crates/cubestore/src/segment.rs",
            "pub const MAGIC: &[u8; 5] = b\"CSEG1\";\n",
        );
        fx.write(
            "crates/cubestore/src/manifest.rs",
            "pub const MAGIC: &[u8; 5] = b\"CMAN1\";\n",
        );
        let findings = run_check(&fx.root).expect("run");
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "single_source_format" && f.message.contains("FNV")),
            "{findings:?}"
        );
    }

    #[test]
    fn clock_and_hashmap_violations_are_found() {
        let fx = Fixture::new("det").with_format_consts();
        fx.write(
            "crates/bench/src/report.rs",
            "use std::collections::HashMap;\npub fn emit() {\n    let t = std::time::Instant::now();\n    let m: HashMap<u32, u32> = HashMap::new();\n    let _ = (t, m);\n}\n",
        );
        let findings = run_check(&fx.root).expect("run");
        let rules: Vec<&str> = findings.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(
            rules,
            ["determinism", "determinism", "determinism"],
            "{findings:?}"
        );
    }

    #[test]
    fn suppressed_finding_passes_but_reasonless_fails() {
        let fx = Fixture::new("suppress").with_format_consts();
        fx.write(
            "crates/mapreduce/src/engine.rs",
            "pub fn run(xs: &[u32]) -> u32 {\n    // spcheck:allow(no_panic): length checked by caller contract\n    xs[0]\n}\n",
        );
        let findings = run_check(&fx.root).expect("run");
        assert!(findings.is_empty(), "{findings:?}");

        let fx = Fixture::new("reasonless").with_format_consts();
        fx.write(
            "crates/mapreduce/src/engine.rs",
            "pub fn run(xs: &[u32]) -> u32 {\n    // spcheck:allow(no_panic)\n    xs[0]\n}\n",
        );
        let findings = run_check(&fx.root).expect("run");
        assert!(
            findings.iter().any(|f| f.rule == "bad_suppression"),
            "{findings:?}"
        );
        assert!(
            findings.iter().any(|f| f.rule == "no_panic"),
            "reason-less allow must not silence the finding: {findings:?}"
        );
    }

    #[test]
    fn error_hygiene_violations_in_codec_are_found() {
        let fx = Fixture::new("hygiene").with_format_consts();
        fx.write(
            "crates/cubestore/src/codec.rs",
            "pub fn bad(x: u64) -> u32 { x as u32 }\npub fn worse() -> Box<dyn std::error::Error> { unimplemented!() }\n",
        );
        let findings = run_check(&fx.root).expect("run");
        let hygiene = findings
            .iter()
            .filter(|f| f.rule == "error_hygiene")
            .count();
        assert_eq!(hygiene, 2, "{findings:?}");
        // codec.rs is also a no_panic path, so unimplemented! shows too.
        assert!(
            findings.iter().any(|f| f.rule == "no_panic"),
            "{findings:?}"
        );
    }

    #[test]
    fn literal_obs_name_is_a_finding_but_names_registry_passes() {
        let fx = Fixture::new("obsname").with_format_consts();
        fx.write(
            "crates/obs/src/names.rs",
            "pub const ENGINE_ROUND: &str = \"engine.round\";\n",
        );
        fx.write(
            "crates/cubestore/src/store.rs",
            "pub fn f(obs: &O) { obs.inc(\"store.cache.hit\", &[]); }\n",
        );
        let findings = run_check(&fx.root).expect("run");
        let obs: Vec<_> = findings.iter().filter(|f| f.rule == "obs_naming").collect();
        assert_eq!(obs.len(), 1, "{findings:?}");
        assert!(obs[0].file.contains("store.rs"));
    }

    #[test]
    fn findings_are_sorted_and_stable() {
        let fx = Fixture::new("sorted").with_format_consts();
        fx.write(
            "crates/mapreduce/src/engine.rs",
            "pub fn f(a: &[u32]) -> u32 { a[1] + a[0] }\n",
        );
        fx.write(
            "crates/mapreduce/src/dfs.rs",
            "pub fn g(a: &[u32]) -> u32 { a[0] }\n",
        );
        let first = run_check(&fx.root).expect("run 1");
        let second = run_check(&fx.root).expect("run 2");
        assert_eq!(first, second);
        let files: Vec<&str> = first.iter().map(|f| f.file.as_str()).collect();
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "findings must come out file-sorted");
    }
}
