//! CLI for the spcheck gate.
//!
//! ```text
//! spcheck [--root <dir>] [--json]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error. `--root`
//! defaults to the current directory (CI runs it from the workspace
//! root via `cargo run -p spcheck`).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => {
                let Some(dir) = argv.next() else {
                    eprintln!("spcheck: --root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--help" | "-h" => {
                println!("usage: spcheck [--root <dir>] [--json]");
                println!("exit codes: 0 clean, 1 findings, 2 usage/io error");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("spcheck: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let findings = match spcheck::run_check(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("spcheck: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", spcheck::report::render_json(&findings));
    } else {
        print!("{}", spcheck::report::render_text(&findings));
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
