//! CLI for the spcheck gate.
//!
//! ```text
//! spcheck [--root <dir>] [--json]
//! spcheck lockgraph [--root <dir>] [--dot]
//! ```
//!
//! The bare form runs the full rule set (R1–R9) and prints findings.
//! `lockgraph` dumps the workspace lock-acquisition graph — every lock
//! class, every may-acquire edge with its source site, and the acyclicity
//! verdict — as text, or as Graphviz DOT with `--dot`.
//!
//! Exit codes: 0 clean/acyclic, 1 findings/cycles, 2 usage or I/O error.
//! `--root` defaults to the current directory (CI runs it from the
//! workspace root via `cargo run -p spcheck`).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut dot = false;
    let mut lockgraph = false;

    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("lockgraph") {
        lockgraph = true;
        argv.next();
    }
    while let Some(arg) = argv.next() {
        match (arg.as_str(), lockgraph) {
            ("--json", false) => json = true,
            ("--dot", true) => dot = true,
            ("--root", _) => {
                let Some(dir) = argv.next() else {
                    eprintln!("spcheck: --root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            ("--help" | "-h", _) => {
                println!("usage: spcheck [--root <dir>] [--json]");
                println!("       spcheck lockgraph [--root <dir>] [--dot]");
                println!("exit codes: 0 clean/acyclic, 1 findings/cycles, 2 usage/io error");
                return ExitCode::SUCCESS;
            }
            (other, _) => {
                eprintln!("spcheck: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let analysis = match spcheck::run_full(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("spcheck: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if lockgraph {
        if dot {
            print!("{}", analysis.model.render_dot());
        } else {
            print!("{}", analysis.model.render_text());
        }
        return if analysis.model.cycles().is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    let findings = analysis.findings;
    if json {
        print!("{}", spcheck::report::render_json(&findings));
    } else {
        print!("{}", spcheck::report::render_text(&findings));
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
