//! The per-file invariants spcheck enforces (R1–R5), the glob policy
//! table scoping every rule — including the cross-file concurrency
//! rules R6–R9 in [`crate::conc`] — and the suppression contract.
//!
//! Each per-file rule scans the scrubbed text of one file (comments and
//! literal bodies already spaced out, `#[cfg(test)]` items blanked) and
//! emits [`Finding`]s. Which rules apply to which files is decided by
//! the [`Scope`] rows of the single `POLICY` table:
//!
//! * **no_panic** (R1) — serving-path modules must not contain panic
//!   sources: `.unwrap()` / `.expect()`, the panicking macros, or slice
//!   indexing `x[i]`.
//! * **single_source_format** (R2) — each binary-format magic
//!   (`SPSK1`, `CSEG1`, `CMAN1`) and the FNV-1a parameters must appear
//!   literally at exactly one non-test site in the workspace.
//! * **determinism** (R3) — wall-clock reads only in the one blessed
//!   module; no `HashMap` on paths that feed persisted or reported
//!   output (iteration order would leak hasher state into bytes).
//! * **error_hygiene** (R4) — codec modules must not use
//!   `Box<dyn Error>` or silently-narrowing `as` casts to u8/u16/u32.
//! * **obs_naming** (R5) — instrument/span names are constants in
//!   `crates/obs/src/names.rs`; a string literal in obs-call position
//!   anywhere else forks the naming contract, and every literal inside
//!   the registry itself must match the lowercase dotted grammar and be
//!   unique.
//!
//! A finding is silenced only by `// spcheck:allow(rule): reason` on the
//! same line or the line above. A suppression with no reason, an unknown
//! rule name, or one that sits unused is itself a finding
//! (**bad_suppression**) — R2 findings are never suppressible because a
//! second magic site is wrong no matter the excuse.

use crate::lexer::{Scrubbed, StrLit, Suppression};
use crate::report::Finding;

/// Rule names accepted inside `spcheck:allow(...)`.
pub const SUPPRESSIBLE_RULES: &[&str] = &[
    "no_panic",
    "single_source_format",
    "determinism",
    "error_hygiene",
    "obs_naming",
    "lock_order",
    "hold_across_io",
    "channel_hygiene",
    "guard_scope",
];

/// Which rule family a policy row scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// R1 serving-path panic ban.
    NoPanic,
    /// R3 HashMap-on-output-path ban.
    OrderedOutput,
    /// R4 codec error hygiene.
    Codec,
    /// The one module allowed to read the wall clock.
    ClockExempt,
    /// R6–R9 concurrency discipline (effectively the whole workspace).
    Concurrency,
    /// Modules blessed to create unbounded `mpsc::channel` (R8).
    ChannelBlessed,
    /// Files the concurrency parser skips (the sync primitives
    /// themselves would self-register phantom lock classes).
    ParseExempt,
}

/// The single policy table: every scope decision in spcheck goes through
/// these glob patterns. `*` matches within one path segment, `**` spans
/// segments, and a leading `!` vetoes a path no matter what else
/// matched. Adding a new module to a scope is one line here — never a
/// code change.
const POLICY: &[(Scope, &[&str])] = &[
    (
        Scope::NoPanic,
        &[
            "crates/mapreduce/src/engine.rs",
            "crates/mapreduce/src/dfs.rs",
            "crates/core/src/spcube/**",
            "crates/obs/src/**",
            // Every cubestore serving module; segment.rs is builder-side
            // (BUC recursion asserts freely) and lib.rs is re-exports.
            "crates/cubestore/src/*.rs",
            "!crates/cubestore/src/segment.rs",
            "!crates/cubestore/src/lib.rs",
            "crates/cubealg/src/read.rs",
        ],
    ),
    (
        Scope::OrderedOutput,
        &[
            "crates/cubestore/src/store.rs",
            "crates/cubestore/src/delta.rs",
            "crates/cubestore/src/scrub.rs",
            "crates/cubestore/src/faults.rs",
            "crates/bench/src/report.rs",
            "crates/bench/src/serving.rs",
            "crates/bench/src/bin/inspect.rs",
            "crates/mapreduce/src/engine.rs",
            "crates/core/src/spcube/**",
            "crates/obs/src/**",
        ],
    ),
    (
        Scope::Codec,
        &[
            "crates/common/src/codec.rs",
            "crates/cubestore/src/codec.rs",
            "crates/cubestore/src/delta.rs",
            "crates/cubestore/src/scrub.rs",
            "crates/cubestore/src/segment.rs",
            "crates/cubestore/src/manifest.rs",
            "crates/core/src/sketch/mod.rs",
        ],
    ),
    (Scope::ClockExempt, &["crates/obs/src/clock.rs"]),
    (Scope::Concurrency, &["crates/**"]),
    // server.rs owns the one blessed unbounded channel: the per-request
    // reply channel, capacity-bounded by the admission queue itself.
    (Scope::ChannelBlessed, &["crates/cubestore/src/server.rs"]),
    (Scope::ParseExempt, &["crates/common/src/sync.rs"]),
];

/// Binary-format magics that must be single-sited (R2).
pub const MAGICS: &[&str] = &["SPSK1", "CSEG1", "CMAN1", "DSEG1"];

/// FNV-1a parameters that must be single-sited (R2), underscore-free
/// lowercase hex without the `0x` prefix.
pub const FNV_HEX: &[(&str, &str)] = &[
    ("FNV offset basis", "cbf29ce484222325"),
    ("FNV prime", "100000001b3"),
];

/// Segment-wise glob match: `**` spans any number of segments, `*`
/// matches within one segment (possibly alongside literal text).
fn glob_match(pattern: &str, path: &str) -> bool {
    fn segs(pat: &[&str], path: &[&str]) -> bool {
        match (pat.first(), path.first()) {
            (None, None) => true,
            (Some(&"**"), _) => {
                segs(&pat[1..], path) || (!path.is_empty() && segs(pat, &path[1..]))
            }
            (Some(p), Some(s)) => seg_match(p, s) && segs(&pat[1..], &path[1..]),
            _ => false,
        }
    }
    fn seg_match(pat: &str, seg: &str) -> bool {
        match pat.split_once('*') {
            None => pat == seg,
            Some((pre, rest)) => {
                if !seg.starts_with(pre) {
                    return false;
                }
                let tail = &seg[pre.len()..];
                (0..=tail.len()).any(|i| seg_match(rest, &tail[i..]))
            }
        }
    }
    let pat: Vec<&str> = pattern.split('/').collect();
    let path: Vec<&str> = path.split('/').collect();
    segs(&pat, &path)
}

/// Is `rel` inside `scope` per the policy table? A `!`-pattern veto
/// wins regardless of ordering.
pub fn in_scope(scope: Scope, rel: &str) -> bool {
    let Some((_, patterns)) = POLICY.iter().find(|(s, _)| *s == scope) else {
        return false;
    };
    let mut matched = false;
    for p in *patterns {
        if let Some(neg) = p.strip_prefix('!') {
            if glob_match(neg, rel) {
                return false;
            }
        } else if glob_match(p, rel) {
            matched = true;
        }
    }
    matched
}

/// Does R1 apply to this workspace-relative path?
pub fn is_no_panic_path(rel: &str) -> bool {
    in_scope(Scope::NoPanic, rel)
}

/// Does the R3 HashMap ban apply?
pub fn is_ordered_output_path(rel: &str) -> bool {
    in_scope(Scope::OrderedOutput, rel)
}

/// Does R4 apply?
pub fn is_codec_path(rel: &str) -> bool {
    in_scope(Scope::Codec, rel)
}

/// Is this file allowed to read the wall clock?
pub fn is_clock_exempt(rel: &str) -> bool {
    in_scope(Scope::ClockExempt, rel)
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Find each occurrence of `word` in `text` as a whole token and report
/// its byte offset.
fn word_offsets(text: &str, word: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = text
        .get(from..)
        .and_then(|t| t.find(word))
        .map(|p| p + from)
    {
        let before_ok = pos == 0 || !is_ident(bytes[pos.saturating_sub(1)]);
        let after = pos + word.len();
        let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
        if before_ok && after_ok {
            out.push(pos);
        }
        from = pos + word.len();
    }
    out
}

fn line_of(text: &str, offset: usize) -> usize {
    1 + text
        .as_bytes()
        .iter()
        .take(offset)
        .filter(|&&b| b == b'\n')
        .count()
}

/// Is the identifier ending just before `pos` (modulo spaces) a keyword
/// that introduces a type or expression rather than naming a sliceable
/// value? `&mut [T]`, `impl [..]`, `return [..]` are not indexing.
fn keyword_before(text: &str, pos: usize) -> bool {
    let bytes = text.as_bytes();
    let mut end = pos;
    while end > 0 && matches!(bytes[end - 1], b' ' | b'\t' | b'\n') {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident(bytes[start - 1]) {
        start -= 1;
    }
    matches!(
        text.get(start..end).unwrap_or(""),
        "mut"
            | "dyn"
            | "in"
            | "return"
            | "break"
            | "as"
            | "impl"
            | "where"
            | "move"
            | "ref"
            | "const"
            | "static"
            | "else"
            | "match"
            | "if"
            | "let"
    )
}

/// Is the token ending just before `pos` (modulo spaces) a lifetime
/// (`'a`)? `&'a [u8]` is a slice type, not indexing.
fn lifetime_before(bytes: &[u8], pos: usize) -> bool {
    let mut end = pos;
    while end > 0 && matches!(bytes[end - 1], b' ' | b'\t' | b'\n') {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident(bytes[start - 1]) {
        start -= 1;
    }
    start > 0 && start < end && bytes[start - 1] == b'\''
}

fn prev_nonspace(bytes: &[u8], pos: usize) -> Option<u8> {
    bytes
        .iter()
        .take(pos)
        .rev()
        .find(|&&b| b != b' ' && b != b'\t' && b != b'\n')
        .copied()
}

fn next_nonspace(bytes: &[u8], pos: usize) -> Option<u8> {
    bytes
        .iter()
        .skip(pos)
        .find(|&&b| b != b' ' && b != b'\t' && b != b'\n')
        .copied()
}

/// R1: panic sources in serving-path files.
pub fn check_no_panic(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    let bytes = text.as_bytes();

    // `.unwrap(` / `.expect(` method calls. Requiring the leading dot and
    // trailing paren means `unwrap_or_else` or an `expect` field never
    // match (word_offsets already rejects ident-adjacent hits anyway).
    for method in ["unwrap", "expect"] {
        for pos in word_offsets(text, method) {
            let called = next_nonspace(bytes, pos + method.len()) == Some(b'(');
            let dotted = prev_nonspace(bytes, pos) == Some(b'.');
            if called && dotted {
                findings.push(Finding::new(
                    rel,
                    line_of(text, pos),
                    "no_panic",
                    format!(".{method}() on a serving path; return a typed Result instead"),
                ));
            }
        }
    }

    // Panicking macros.
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        for pos in word_offsets(text, mac) {
            if bytes.get(pos + mac.len()) == Some(&b'!') {
                findings.push(Finding::new(
                    rel,
                    line_of(text, pos),
                    "no_panic",
                    format!("{mac}! on a serving path; return a typed Result instead"),
                ));
            }
        }
    }

    // Slice/array indexing: `[` immediately preceded (modulo spaces) by an
    // expression terminator. This excludes `vec![` (prev `!`), attributes
    // `#[` (prev `#`), slice types `&[u8]` (prev `&`), `: [T; 4]` (prev
    // `:`), keyword-led types like `&mut [T]` / `dyn [..]`, and
    // pattern/type positions generally.
    for (pos, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let Some(prev) = prev_nonspace(bytes, pos) else {
            continue;
        };
        let indexes_expr =
            (is_ident(prev) && !keyword_before(text, pos) && !lifetime_before(bytes, pos))
                || prev == b')'
                || prev == b']'
                || prev == b'?';
        // `x[..]` etc. still index; but an empty `[]` right after an ident
        // is array-repeat syntax in consts — treat `[` followed directly
        // by `]` as not indexing.
        if indexes_expr && next_nonspace(bytes, pos + 1) != Some(b']') {
            findings.push(Finding::new(
                rel,
                line_of(text, pos),
                "no_panic",
                "slice indexing on a serving path; use .get()/.get_mut()".to_string(),
            ));
        }
    }
}

/// One magic-constant literal site, for R2 cross-file accounting.
#[derive(Debug, Clone)]
pub struct MagicSite {
    pub rel: String,
    pub line: usize,
    /// Which magic / constant this site defines.
    pub what: String,
}

/// R2 per-file half: collect magic string-literal sites outside tests.
pub fn collect_magic_sites(
    rel: &str,
    literals: &[StrLit],
    test_ranges: &[(usize, usize)],
    out: &mut Vec<MagicSite>,
) {
    for lit in literals {
        if test_ranges
            .iter()
            .any(|&(a, b)| lit.offset >= a && lit.offset < b)
        {
            continue;
        }
        for magic in MAGICS {
            if lit.value == *magic {
                out.push(MagicSite {
                    rel: rel.to_string(),
                    line: lit.line,
                    what: (*magic).to_string(),
                });
            }
        }
    }
}

/// R2 per-file half: collect FNV-parameter hex-literal sites.
pub fn collect_fnv_sites(rel: &str, text: &str, out: &mut Vec<MagicSite>) {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b'0' && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X') {
            let start = i + 2;
            let mut j = start;
            while j < bytes.len() && (bytes[j].is_ascii_hexdigit() || bytes[j] == b'_') {
                j += 1;
            }
            let hex: String = text
                .get(start..j)
                .unwrap_or("")
                .chars()
                .filter(|&c| c != '_')
                .collect::<String>()
                .to_ascii_lowercase();
            for (what, want) in FNV_HEX {
                if hex == *want {
                    out.push(MagicSite {
                        rel: rel.to_string(),
                        line: line_of(text, i),
                        what: (*what).to_string(),
                    });
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
}

/// R2 workspace half: every magic / FNV parameter must have exactly one
/// site. Called once after the walk, with all sites pooled.
pub fn check_single_source(sites: &[MagicSite], findings: &mut Vec<Finding>) {
    let names: Vec<String> = MAGICS
        .iter()
        .map(|m| (*m).to_string())
        .chain(FNV_HEX.iter().map(|(w, _)| (*w).to_string()))
        .collect();
    for what in &names {
        let hits: Vec<&MagicSite> = sites.iter().filter(|s| &s.what == what).collect();
        match hits.len() {
            1 => {}
            0 => findings.push(Finding::new(
                "<workspace>",
                0,
                "single_source_format",
                format!("{what} has no literal definition site"),
            )),
            _ => {
                for site in &hits {
                    findings.push(Finding::new(
                        &site.rel,
                        site.line,
                        "single_source_format",
                        format!(
                            "{what} defined at {} sites; keep one const and import it",
                            hits.len()
                        ),
                    ));
                }
            }
        }
    }
}

/// Obs API methods whose first argument is an instrument/span name (R5).
/// `.method("...")` with a literal in that position bypasses the
/// `obs::names` registry.
const OBS_NAME_METHODS: &[&str] = &[
    "span",
    "event",
    "inc",
    "add",
    "gauge_set",
    "hist_record",
    "histogram",
    "counter",
    "gauge",
    "counter_value",
    "gauge_value",
];

/// The file where obs names are registered (R5 audits its literals).
const OBS_NAMES_REGISTRY: &str = "crates/obs/src/names.rs";

fn in_test_ranges(offset: usize, test_ranges: &[(usize, usize)]) -> bool {
    test_ranges.iter().any(|&(a, b)| offset >= a && offset < b)
}

/// The obs naming grammar: `[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*`.
/// Duplicated from `spcube_obs::names::valid_name` on purpose — spcheck
/// is dependency-free so it can run before anything else builds.
fn obs_name_grammar(s: &str) -> bool {
    !s.is_empty()
        && s.split('.').all(|seg| {
            let mut chars = seg.chars();
            matches!(chars.next(), Some('a'..='z'))
                && chars.all(|c| matches!(c, 'a'..='z' | '0'..='9' | '_'))
        })
}

/// If the literal at `offset` sits in obs-call position
/// (`.method( "..."` with `method` in [`OBS_NAME_METHODS`]), return the
/// method name.
fn obs_method_before(text: &str, offset: usize) -> Option<&str> {
    let bytes = text.as_bytes();
    let mut i = offset;
    while i > 0 && matches!(bytes[i - 1], b' ' | b'\t' | b'\n') {
        i -= 1;
    }
    if i == 0 || bytes[i - 1] != b'(' {
        return None;
    }
    i -= 1;
    let mut start = i;
    while start > 0 && is_ident(bytes[start - 1]) {
        start -= 1;
    }
    let method = text.get(start..i)?;
    (OBS_NAME_METHODS.contains(&method) && start > 0 && bytes[start - 1] == b'.').then_some(method)
}

/// R5: outside `crates/obs/`, a string literal in obs-call position is a
/// forked name — call sites must import a const from `obs::names`. Inside
/// the registry file itself, every non-test literal must match the
/// grammar and appear once.
pub fn check_obs_naming(
    rel: &str,
    text: &str,
    literals: &[StrLit],
    test_ranges: &[(usize, usize)],
    findings: &mut Vec<Finding>,
) {
    if rel.starts_with("crates/obs/") {
        if rel == OBS_NAMES_REGISTRY {
            let mut seen: Vec<&str> = Vec::new();
            for lit in literals {
                if in_test_ranges(lit.offset, test_ranges) {
                    continue;
                }
                if !obs_name_grammar(&lit.value) {
                    findings.push(Finding::new(
                        rel,
                        lit.line,
                        "obs_naming",
                        format!(
                            "name {:?} violates the grammar [a-z][a-z0-9_]*(.seg)*",
                            lit.value
                        ),
                    ));
                }
                if seen.contains(&lit.value.as_str()) {
                    findings.push(Finding::new(
                        rel,
                        lit.line,
                        "obs_naming",
                        format!("duplicate obs name {:?} in the registry", lit.value),
                    ));
                } else {
                    seen.push(&lit.value);
                }
            }
        }
        return;
    }
    for lit in literals {
        if in_test_ranges(lit.offset, test_ranges) {
            continue;
        }
        if let Some(method) = obs_method_before(text, lit.offset) {
            findings.push(Finding::new(
                rel,
                lit.line,
                "obs_naming",
                format!(
                    "string literal name in obs `.{method}(...)`; use a const from spcube_obs::names"
                ),
            ));
        }
    }
}

/// R3: wall-clock reads and HashMap-on-output-path.
pub fn check_determinism(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    if !is_clock_exempt(rel) {
        for clock in ["SystemTime", "Instant"] {
            for pos in word_offsets(text, clock) {
                // Only calls to ::now matter; mentioning the type (e.g. in
                // a stored field or an argument) is fine.
                let after = text.get(pos + clock.len()..).unwrap_or("");
                if after.trim_start().starts_with("::now") {
                    findings.push(Finding::new(
                        rel,
                        line_of(text, pos),
                        "determinism",
                        format!("{clock}::now outside obs::clock; route timing through Stopwatch"),
                    ));
                }
            }
        }
    }

    if is_ordered_output_path(rel) {
        for pos in word_offsets(text, "HashMap") {
            // `use std::collections::HashMap;` lines are fine — only
            // instantiation sites matter, and an unused import is caught
            // by rustc anyway.
            let line_start = text
                .get(..pos)
                .and_then(|t| t.rfind('\n'))
                .map(|p| p + 1)
                .unwrap_or(0);
            let line_text = text.get(line_start..pos).unwrap_or("").trim_start();
            if line_text.starts_with("use ") {
                continue;
            }
            findings.push(Finding::new(
                rel,
                line_of(text, pos),
                "determinism",
                "HashMap on an output path; use BTreeMap (or sort before emitting and suppress)"
                    .to_string(),
            ));
        }
    }
}

/// R4: error hygiene in codec modules.
pub fn check_error_hygiene(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    if !is_codec_path(rel) {
        return;
    }
    for pos in word_offsets(text, "Box") {
        let after = text.get(pos + 3..).unwrap_or("");
        if after.trim_start().starts_with("<dyn") {
            findings.push(Finding::new(
                rel,
                line_of(text, pos),
                "error_hygiene",
                "Box<dyn Error> in a codec; use the typed spcube_common::Error".to_string(),
            ));
        }
    }
    for pos in word_offsets(text, "as") {
        let after = text.get(pos + 2..).unwrap_or("");
        let word: String = after
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        if matches!(word.as_str(), "u8" | "u16" | "u32") {
            findings.push(Finding::new(
                rel,
                line_of(text, pos),
                "error_hygiene",
                format!("narrowing `as {word}` cast in a codec; use try_from and surface Corrupt"),
            ));
        }
    }
}

/// Apply the suppression contract: drop findings covered by a valid
/// same-line / previous-line `spcheck:allow`, and emit `bad_suppression`
/// findings for reason-less, unknown-rule, or unused suppressions. An
/// unused allow names its rule and the nearest finding of that rule it
/// would have matched, so the fix (move it or delete it) is obvious.
pub fn apply_suppressions(
    rel: &str,
    suppressions: &[Suppression],
    findings: Vec<Finding>,
) -> Vec<Finding> {
    let mut used = vec![false; suppressions.len()];
    let mut out = Vec::new();
    // Pre-suppression (rule, line) pairs, for the nearest-finding hints.
    let all_sites: Vec<(String, usize)> =
        findings.iter().map(|f| (f.rule.clone(), f.line)).collect();

    for f in findings {
        // R2 is a cross-file invariant; a comment at one site cannot make
        // a second definition site correct.
        let suppressible = f.rule != "single_source_format";
        let matched = suppressible
            && suppressions.iter().enumerate().any(|(i, s)| {
                let covers = s.line == f.line || s.line + 1 == f.line;
                let valid = s.rule == f.rule && s.has_reason;
                if covers && valid {
                    used[i] = true;
                    true
                } else {
                    false
                }
            });
        if !matched {
            out.push(f);
        }
    }

    for (i, s) in suppressions.iter().enumerate() {
        if !SUPPRESSIBLE_RULES.contains(&s.rule.as_str()) {
            out.push(Finding::new(
                rel,
                s.line,
                "bad_suppression",
                format!(
                    "unknown rule {:?} in spcheck:allow (expected one of {})",
                    s.rule,
                    SUPPRESSIBLE_RULES.join(", ")
                ),
            ));
        } else if !s.has_reason {
            out.push(Finding::new(
                rel,
                s.line,
                "bad_suppression",
                format!(
                    "spcheck:allow({}) without a reason; write `spcheck:allow({}): why`",
                    s.rule, s.rule
                ),
            ));
        } else if !used[i] {
            let nearest = all_sites
                .iter()
                .filter(|(r, _)| *r == s.rule)
                .min_by_key(|(_, l)| l.abs_diff(s.line));
            let hint = match nearest {
                Some((_, l)) => format!(
                    "nearest {} finding is at line {l}; move the allow to that line or the line above",
                    s.rule
                ),
                None => format!("no {} findings in this file; delete the allow", s.rule),
            };
            out.push(Finding::new(
                rel,
                s.line,
                "bad_suppression",
                format!("unused spcheck:allow({}); {hint}", s.rule),
            ));
        }
    }

    out
}

/// Run every per-file rule on one scrubbed file, returning **raw**
/// (pre-suppression) findings. Suppressions are applied once per file by
/// the driver after the workspace-wide passes (R2, R6–R9) have run, so
/// an allow can silence a concurrency finding and unused-allow detection
/// sees the complete picture. Magic sites are accumulated into
/// `magic_sites` for the workspace-wide R2 pass.
pub fn check_file(
    rel: &str,
    scrubbed: &Scrubbed,
    test_ranges: &[(usize, usize)],
    magic_sites: &mut Vec<MagicSite>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    if is_no_panic_path(rel) {
        check_no_panic(rel, &scrubbed.text, &mut findings);
    }
    check_determinism(rel, &scrubbed.text, &mut findings);
    check_error_hygiene(rel, &scrubbed.text, &mut findings);
    check_obs_naming(
        rel,
        &scrubbed.text,
        &scrubbed.literals,
        test_ranges,
        &mut findings,
    );
    collect_magic_sites(rel, &scrubbed.literals, test_ranges, magic_sites);
    collect_fnv_sites(rel, &scrubbed.text, magic_sites);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;

    const SERVING: &str = "crates/mapreduce/src/engine.rs";

    fn run_r1(src: &str) -> Vec<Finding> {
        let mut f = Vec::new();
        check_no_panic(SERVING, &scrub(src).text, &mut f);
        f
    }

    #[test]
    fn unwrap_and_expect_calls_are_flagged() {
        let f = run_r1("let x = y.unwrap();\nlet z = w.expect(\"msg\");\n");
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        assert!(run_r1("let x = y.unwrap_or_else(|| 0);\nlet z = w.unwrap_or(1);\n").is_empty());
    }

    #[test]
    fn undotted_expect_is_not_flagged() {
        // A local fn named expect, or a path call, is not Option::expect.
        assert!(run_r1("let x = expect(1);\n").is_empty());
    }

    #[test]
    fn panicking_macros_are_flagged() {
        let f = run_r1("panic!(\"boom\");\nunreachable!();\ntodo!();\nunimplemented!();\n");
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn indexing_is_flagged_but_types_and_macros_are_not() {
        let f = run_r1("let a = xs[i];\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(run_r1("let v = vec![1, 2];\n").is_empty());
        assert!(run_r1("#[derive(Debug)]\nstruct S;\n").is_empty());
        assert!(run_r1("fn f(b: &[u8]) {}\n").is_empty());
        assert!(run_r1("let t: [u8; 4] = *b\"abcd\";\n").is_empty());
        assert!(run_r1("fn f(tuples: &mut [&u32]) {}\n").is_empty());
        assert!(run_r1("fn g() -> &'static mut [u8] { todo_elsewhere() }\n").is_empty());
        assert!(run_r1("struct P<'a> { bytes: &'a [u8], pos: usize }\n").is_empty());
        // `let [..] = ..` destructures an array; nothing can panic.
        assert!(run_r1("let [a, b, c] = words;\n").is_empty());
    }

    #[test]
    fn chained_and_try_indexing_is_flagged() {
        assert_eq!(run_r1("let a = f()[0];\n").len(), 1);
        assert_eq!(run_r1("let a = m[k][j];\n").len(), 2);
    }

    #[test]
    fn clock_reads_flagged_outside_obs_clock() {
        let mut f = Vec::new();
        check_determinism(SERVING, "let t = Instant::now();", &mut f);
        assert_eq!(f.len(), 1);
        let mut f = Vec::new();
        check_determinism("crates/obs/src/clock.rs", "let t = Instant::now();", &mut f);
        assert!(f.is_empty(), "obs clock.rs is the blessed clock site");
        let mut f = Vec::new();
        check_determinism(
            "crates/mapreduce/src/metrics.rs",
            "let t = Instant::now();",
            &mut f,
        );
        assert_eq!(f.len(), 1, "the old metrics.rs exemption is revoked");
    }

    #[test]
    fn clock_type_mention_without_now_is_fine() {
        let mut f = Vec::new();
        check_determinism(SERVING, "struct S(Instant);", &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn hashmap_flagged_on_output_paths_only() {
        let mut f = Vec::new();
        check_determinism(SERVING, "let m: HashMap<K, V> = HashMap::new();", &mut f);
        assert_eq!(f.len(), 2);
        let mut f = Vec::new();
        check_determinism("crates/agg/src/lib.rs", "let m = HashMap::new();", &mut f);
        assert!(f.is_empty(), "non-output path may hash");
        let mut f = Vec::new();
        check_determinism(SERVING, "use std::collections::HashMap;", &mut f);
        assert!(f.is_empty(), "import line is not an instantiation");
    }

    fn run_r5(rel: &str, src: &str) -> Vec<Finding> {
        let mut s = scrub(src);
        let ranges = crate::lexer::blank_test_regions(&mut s.text);
        let mut f = Vec::new();
        check_obs_naming(rel, &s.text, &s.literals, &ranges, &mut f);
        f
    }

    #[test]
    fn literal_obs_name_at_call_site_is_flagged() {
        let src = "obs.inc(\"my.counter\", &[]);\nlet h = obs.histogram(\"serve.lat\", &[]);\n";
        let f = run_r5(SERVING, src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "obs_naming"));
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn const_names_and_label_literals_pass() {
        // Consts in name position and string literals in *label* position
        // (`&[("phase", ..)]`) are both fine.
        let src = "obs.event(names::ENGINE_TASK_RETRY, parent, &[(\"phase\", p)]);\n";
        assert!(run_r5(SERVING, src).is_empty());
        // Unrelated methods taking literals never match.
        assert!(run_r5(SERVING, "let x = map.get(\"key\"); y.expect(\"msg\");\n").is_empty());
        // Free functions (no dot) are not obs calls.
        assert!(run_r5(SERVING, "let c = counter(\"free.fn\");\n").is_empty());
    }

    #[test]
    fn obs_crate_call_sites_are_exempt_but_registry_is_audited() {
        // The crate's own internals pass names through parameters.
        assert!(run_r5("crates/obs/src/registry.rs", "self.counter(\"x\", &[]);\n").is_empty());
        // The registry: grammar violations and duplicates are findings.
        let reg = "pub const A: &str = \"engine.round\";\npub const B: &str = \"Bad.Name\";\npub const C: &str = \"engine.round\";\n";
        let f = run_r5("crates/obs/src/names.rs", reg);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("grammar"));
        assert!(f[1].message.contains("duplicate"));
    }

    #[test]
    fn obs_naming_skips_test_code() {
        let src = "pub fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t(obs: &O) { obs.inc(\"adhoc.test.name\", &[]); }\n}\n";
        assert!(run_r5(SERVING, src).is_empty());
    }

    #[test]
    fn error_hygiene_in_codecs() {
        let rel = "crates/cubestore/src/segment.rs";
        let mut f = Vec::new();
        check_error_hygiene(rel, "fn f() -> Box<dyn Error> { x as u32 }", &mut f);
        assert_eq!(f.len(), 2);
        let mut f = Vec::new();
        check_error_hygiene(rel, "let wide = x as u64; let fl = y as f64;", &mut f);
        assert!(f.is_empty(), "widening casts are fine");
        let mut f = Vec::new();
        check_error_hygiene("crates/bench/src/report.rs", "x as u8;", &mut f);
        assert!(f.is_empty(), "non-codec file exempt");
    }

    #[test]
    fn valid_suppression_silences_finding() {
        let src = "// spcheck:allow(no_panic): protocol invariant\nunreachable!();\n";
        let s = scrub(src);
        let mut f = Vec::new();
        check_no_panic(SERVING, &s.text, &mut f);
        assert_eq!(f.len(), 1);
        let out = apply_suppressions(SERVING, &s.suppressions, f);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn same_line_suppression_works() {
        let src = "let x = xs[i]; // spcheck:allow(no_panic): i < len checked above\n";
        let s = scrub(src);
        let mut f = Vec::new();
        check_no_panic(SERVING, &s.text, &mut f);
        let out = apply_suppressions(SERVING, &s.suppressions, f);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn reasonless_suppression_is_its_own_finding() {
        let src = "// spcheck:allow(no_panic)\nunreachable!();\n";
        let s = scrub(src);
        let mut f = Vec::new();
        check_no_panic(SERVING, &s.text, &mut f);
        let out = apply_suppressions(SERVING, &s.suppressions, f);
        // The unreachable! survives AND the suppression is flagged.
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(|f| f.rule == "bad_suppression"));
        assert!(out.iter().any(|f| f.rule == "no_panic"));
    }

    #[test]
    fn unknown_rule_suppression_is_flagged() {
        let s = scrub("// spcheck:allow(no_such_rule): because\nlet x = 1;\n");
        let out = apply_suppressions(SERVING, &s.suppressions, Vec::new());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "bad_suppression");
    }

    #[test]
    fn unused_suppression_is_flagged() {
        let s = scrub("// spcheck:allow(no_panic): nothing here panics\nlet x = 1;\n");
        let out = apply_suppressions(SERVING, &s.suppressions, Vec::new());
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("unused"));
    }

    #[test]
    fn wrong_rule_does_not_cover_finding() {
        let src = "// spcheck:allow(determinism): wrong rule\nunreachable!();\n";
        let s = scrub(src);
        let mut f = Vec::new();
        check_no_panic(SERVING, &s.text, &mut f);
        let out = apply_suppressions(SERVING, &s.suppressions, f);
        // Finding survives, suppression reported unused.
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn r2_not_suppressible() {
        let f = vec![Finding::new(
            SERVING,
            3,
            "single_source_format",
            "dup".into(),
        )];
        let s = scrub("// dummy\n// spcheck:allow(single_source_format): nice try\nMAGIC\n");
        let out = apply_suppressions(SERVING, &s.suppressions, f);
        assert!(out.iter().any(|f| f.rule == "single_source_format"));
    }

    #[test]
    fn single_source_counts_sites() {
        let one = vec![MagicSite {
            rel: "a.rs".into(),
            line: 1,
            what: "SPSK1".into(),
        }];
        let mut f = Vec::new();
        check_single_source(&one, &mut f);
        // SPSK1 ok; everything else missing.
        assert_eq!(f.len(), MAGICS.len() + FNV_HEX.len() - 1, "{f:?}");
        assert!(f
            .iter()
            .all(|f| f.message.contains("no literal definition")));

        let two = vec![
            MagicSite {
                rel: "a.rs".into(),
                line: 1,
                what: "SPSK1".into(),
            },
            MagicSite {
                rel: "b.rs".into(),
                line: 9,
                what: "SPSK1".into(),
            },
        ];
        let mut f = Vec::new();
        check_single_source(&two, &mut f);
        assert_eq!(
            f.iter().filter(|f| f.message.contains("2 sites")).count(),
            2,
            "{f:?}"
        );
    }

    #[test]
    fn fnv_sites_found_with_underscores_and_case() {
        let mut sites = Vec::new();
        collect_fnv_sites(
            "crates/common/src/codec.rs",
            "const B: u64 = 0xcbf2_9ce4_8422_2325;\nconst P: u64 = 0x100_0000_01b3;\n",
            &mut sites,
        );
        assert_eq!(sites.len(), 2, "{sites:?}");
    }

    #[test]
    fn glob_star_is_segment_local_and_doublestar_spans() {
        assert!(glob_match(
            "crates/cubestore/src/*.rs",
            "crates/cubestore/src/store.rs"
        ));
        assert!(!glob_match(
            "crates/cubestore/src/*.rs",
            "crates/cubestore/src/sub/more.rs"
        ));
        assert!(glob_match("crates/obs/src/**", "crates/obs/src/clock.rs"));
        assert!(glob_match("crates/obs/src/**", "crates/obs/src/a/b/c.rs"));
        assert!(!glob_match("crates/obs/src/**", "crates/obs/srcx/clock.rs"));
        assert!(glob_match("crates/**", "crates/anything/at/all.rs"));
        assert!(!glob_match("crates/**", "other/top.rs"));
        assert!(glob_match(
            "**/inspect.rs",
            "crates/bench/src/bin/inspect.rs"
        ));
        assert!(glob_match("crates/*/src/lib.rs", "crates/obs/src/lib.rs"));
    }

    #[test]
    fn policy_scopes_cover_the_known_paths() {
        // The glob table must reproduce the old suffix lists exactly.
        for p in [
            "crates/mapreduce/src/engine.rs",
            "crates/mapreduce/src/dfs.rs",
            "crates/core/src/spcube/mod.rs",
            "crates/obs/src/trace.rs",
            "crates/cubestore/src/store.rs",
            "crates/cubestore/src/faults.rs",
            "crates/cubestore/src/scrub.rs",
            "crates/cubestore/src/client.rs",
            "crates/cubealg/src/read.rs",
        ] {
            assert!(is_no_panic_path(p), "{p} must stay a no_panic path");
        }
        for p in [
            "crates/cubestore/src/segment.rs",
            "crates/cubestore/src/lib.rs",
            "crates/bench/src/runner.rs",
            "crates/cubealg/src/lib.rs",
        ] {
            assert!(!is_no_panic_path(p), "{p} must stay exempt from no_panic");
        }
        assert!(is_ordered_output_path("crates/bench/src/bin/inspect.rs"));
        assert!(is_ordered_output_path("crates/cubestore/src/scrub.rs"));
        assert!(is_ordered_output_path("crates/cubestore/src/faults.rs"));
        assert!(!is_ordered_output_path("crates/cubestore/src/blob.rs"));
        assert!(is_codec_path("crates/common/src/codec.rs"));
        assert!(is_codec_path("crates/cubestore/src/scrub.rs"));
        assert!(is_clock_exempt("crates/obs/src/clock.rs"));
        assert!(!is_clock_exempt("crates/obs/src/lib.rs"));
        assert!(in_scope(
            Scope::Concurrency,
            "crates/cubestore/src/server.rs"
        ));
        assert!(in_scope(
            Scope::ChannelBlessed,
            "crates/cubestore/src/server.rs"
        ));
        assert!(!in_scope(
            Scope::ChannelBlessed,
            "crates/cubestore/src/client.rs"
        ));
        assert!(in_scope(Scope::ParseExempt, "crates/common/src/sync.rs"));
    }

    #[test]
    fn flight_recorder_modules_are_inside_the_strict_scopes() {
        // The seqlock ring, the scoped trace context, and the tail sampler
        // are on the hot query path: they must stay under both the no-panic
        // and the ordered-output policies.
        for rel in [
            "crates/obs/src/ring.rs",
            "crates/obs/src/ctx.rs",
            "crates/obs/src/sampler.rs",
        ] {
            assert!(is_no_panic_path(rel), "{rel} must be NoPanic scope");
            assert!(
                is_ordered_output_path(rel),
                "{rel} must be OrderedOutput scope"
            );
        }
    }

    #[test]
    fn negative_pattern_vetoes_regardless_of_order() {
        // segment.rs matches the positive `*.rs` pattern but the `!`
        // entry wins even though it comes after.
        assert!(!is_no_panic_path("crates/cubestore/src/segment.rs"));
    }

    #[test]
    fn unused_allow_names_rule_and_nearest_finding() {
        let s =
            scrub("// spcheck:allow(no_panic): wrong spot\nlet x = 1;\nlet y = 2;\nlet z = 3;\n");
        let findings = vec![Finding::new(SERVING, 4, "no_panic", "boom".into())];
        let out = apply_suppressions(SERVING, &s.suppressions, findings);
        let bad = out
            .iter()
            .find(|f| f.rule == "bad_suppression")
            .expect("unused allow flagged");
        assert!(
            bad.message.contains("unused spcheck:allow(no_panic)"),
            "{}",
            bad.message
        );
        assert!(bad.message.contains("line 4"), "{}", bad.message);

        let out = apply_suppressions(SERVING, &s.suppressions, Vec::new());
        let bad = out.first().expect("still flagged");
        assert!(
            bad.message.contains("no no_panic findings in this file"),
            "{}",
            bad.message
        );
    }

    #[test]
    fn new_concurrency_rules_are_suppressible() {
        for rule in [
            "lock_order",
            "hold_across_io",
            "channel_hygiene",
            "guard_scope",
        ] {
            assert!(SUPPRESSIBLE_RULES.contains(&rule), "{rule}");
            let src = format!("// spcheck:allow({rule}): fixture reason\nlet x = 1;\n");
            let s = scrub(&src);
            let findings = vec![Finding::new(SERVING, 2, rule, "seeded".into())];
            let out = apply_suppressions(SERVING, &s.suppressions, findings);
            assert!(out.is_empty(), "{rule}: {out:?}");
        }
    }

    #[test]
    fn magic_sites_skip_test_ranges() {
        let src = "const M: &[u8; 5] = b\"CSEG1\";\n#[cfg(test)]\nmod tests { const T: &[u8; 5] = b\"CSEG1\"; }\n";
        let mut s = scrub(src);
        let ranges = crate::lexer::blank_test_regions(&mut s.text);
        let mut sites = Vec::new();
        collect_magic_sites("x.rs", &s.literals, &ranges, &mut sites);
        assert_eq!(sites.len(), 1, "{sites:?}");
        assert_eq!(sites[0].line, 1);
    }
}
