//! Concurrency-discipline rules (R6–R9) over the workspace [`Model`].
//!
//! * **R6 `lock_order`** — any cycle in the lock-order graph is a
//!   potential deadlock; the finding prints the full witness path with
//!   the source location of every edge.
//! * **R7 `hold_across_io`** — no guard may be live across a blocking
//!   operation: a `BlobStore` call, a channel `send`/`recv`, a
//!   `Condvar` wait with a *foreign* guard (one other than the guard
//!   handed to the wait), a `thread::join`, or a call into a function
//!   whose summary says it may do any of those.
//! * **R8 `channel_hygiene`** — unbounded `mpsc::channel()` is only
//!   allowed in blessed modules (the policy table's `ChannelBlessed`
//!   scope); every `send` result must be handled (`let _ =` counts as
//!   an explicit decision; a bare `tx.send(..);` statement does not).
//! * **R9 `guard_scope`** — a guard must not be held across a call
//!   whose callee may acquire a lock declared in *another* crate; such
//!   calls entangle the two crates' lock orders invisibly. (Calls that
//!   may block are already R7; R9 catches the lock-only cases.)
//!
//! All findings flow through the standard suppression contract
//! (`// spcheck:allow(rule): reason`).

use crate::model::{witness, Model};
use crate::parse::Event;
use crate::report::Finding;
use crate::rules::{in_scope, Scope};

pub const RULE_LOCK_ORDER: &str = "lock_order";
pub const RULE_HOLD_ACROSS_IO: &str = "hold_across_io";
pub const RULE_CHANNEL_HYGIENE: &str = "channel_hygiene";
pub const RULE_GUARD_SCOPE: &str = "guard_scope";

fn guard_list(held: &[String]) -> String {
    held.iter()
        .map(|h| format!("`{h}`"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Run R6–R9 and append raw (pre-suppression) findings.
pub fn check(model: &Model, findings: &mut Vec<Finding>) {
    // R6: cycles in the lock-order graph, anchored at the first edge.
    for cycle in model.cycles() {
        let first = (
            cycle[0].clone(),
            cycle.get(1).cloned().unwrap_or_else(|| cycle[0].clone()),
        );
        let info = match model.edges.get(&first) {
            Some(i) => i,
            None => continue,
        };
        findings.push(Finding::new(
            &info.rel,
            info.line,
            RULE_LOCK_ORDER,
            format!("lock-order cycle: {}", witness(model, &cycle)),
        ));
    }

    for (i, f) in model.fns.iter().enumerate() {
        let conc = in_scope(Scope::Concurrency, &f.rel);
        let blessed = in_scope(Scope::ChannelBlessed, &f.rel);
        for e in &f.events {
            match e {
                Event::Send {
                    line,
                    handled,
                    held,
                } => {
                    if conc && !held.is_empty() {
                        findings.push(Finding::new(
                            &f.rel,
                            *line,
                            RULE_HOLD_ACROSS_IO,
                            format!(
                                "guard(s) {} held across channel send in {}",
                                guard_list(held),
                                f.label()
                            ),
                        ));
                    }
                    if !handled {
                        findings.push(Finding::new(
                            &f.rel,
                            *line,
                            RULE_CHANNEL_HYGIENE,
                            format!(
                                "send result dropped on the floor in {}; handle it or make the choice explicit with `let _ =`",
                                f.label()
                            ),
                        ));
                    }
                }
                Event::Recv { line, held } if conc && !held.is_empty() => {
                    findings.push(Finding::new(
                        &f.rel,
                        *line,
                        RULE_HOLD_ACROSS_IO,
                        format!(
                            "guard(s) {} held across channel recv in {}",
                            guard_list(held),
                            f.label()
                        ),
                    ));
                }
                Event::Join { line, held } if conc && !held.is_empty() => {
                    findings.push(Finding::new(
                        &f.rel,
                        *line,
                        RULE_HOLD_ACROSS_IO,
                        format!(
                            "guard(s) {} held across thread join in {}",
                            guard_list(held),
                            f.label()
                        ),
                    ));
                }
                Event::Wait { passed, line, held } if conc => {
                    let foreign: Vec<String> = held
                        .iter()
                        .filter(|h| Some(h.as_str()) != passed.as_deref())
                        .cloned()
                        .collect();
                    if !foreign.is_empty() {
                        findings.push(Finding::new(
                            &f.rel,
                            *line,
                            RULE_HOLD_ACROSS_IO,
                            format!(
                                "foreign guard(s) {} held across condvar wait in {}",
                                guard_list(&foreign),
                                f.label()
                            ),
                        ));
                    }
                }
                Event::ChannelNew { line } if !blessed => {
                    findings.push(Finding::new(
                        &f.rel,
                        *line,
                        RULE_CHANNEL_HYGIENE,
                        format!(
                            "unbounded mpsc::channel() in {} outside blessed modules; use a bounded sync_channel or bless the module in the policy table",
                            f.label()
                        ),
                    ));
                }
                Event::Call(c) if conc && !c.held.is_empty() => {
                    let resolved = model.resolve_call(i, c);
                    if resolved.blob {
                        findings.push(Finding::new(
                            &f.rel,
                            c.line,
                            RULE_HOLD_ACROSS_IO,
                            format!(
                                "guard(s) {} held across BlobStore::{} in {}",
                                guard_list(&c.held),
                                c.method,
                                f.label()
                            ),
                        ));
                        continue;
                    }
                    let io_target = resolved
                        .targets
                        .iter()
                        .find(|&&t| model.fns[t].may_io)
                        .copied();
                    if let Some(t) = io_target {
                        findings.push(Finding::new(
                            &f.rel,
                            c.line,
                            RULE_HOLD_ACROSS_IO,
                            format!(
                                "guard(s) {} held across call to {} which may block on IO/channel/wait",
                                guard_list(&c.held),
                                model.fns[t].label()
                            ),
                        ));
                        continue;
                    }
                    // R9: callee may take a lock declared in another crate.
                    let mut foreign: Vec<(String, String)> = Vec::new();
                    for &t in &resolved.targets {
                        for class in &model.fns[t].may_acquire {
                            let declared = model.class_krate(class).unwrap_or("");
                            if declared != f.krate && !foreign.iter().any(|(c2, _)| c2 == class) {
                                foreign.push((class.clone(), model.fns[t].label()));
                            }
                        }
                    }
                    if let Some((class, label)) = foreign.first() {
                        findings.push(Finding::new(
                            &f.rel,
                            c.line,
                            RULE_GUARD_SCOPE,
                            format!(
                                "guard(s) {} held across call to {} which may acquire `{}` (declared in another crate)",
                                guard_list(&c.held),
                                label,
                                class
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build;
    use crate::parse::parse_workspace;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<(String, String)> = files
            .iter()
            .map(|(rel, src)| {
                let mut s = crate::lexer::scrub(src);
                crate::lexer::blank_test_regions(&mut s.text);
                (rel.to_string(), s.text)
            })
            .collect();
        let model = build(parse_workspace(&parsed));
        let mut findings = Vec::new();
        check(&model, &mut findings);
        findings
    }

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn r6_fires_on_ab_ba_with_witness() {
        let f = run(&[(
            "crates/x/src/pair.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn ab(&self) {\n        let ga = lock_or_recover(&self.a);\n        let gb = lock_or_recover(&self.b);\n        drop(gb);\n        drop(ga);\n    }\n    fn ba(&self) {\n        let gb = lock_or_recover(&self.b);\n        let ga = lock_or_recover(&self.a);\n        drop(ga);\n        drop(gb);\n    }\n}\n",
        )]);
        let cycles: Vec<_> = f.iter().filter(|f| f.rule == RULE_LOCK_ORDER).collect();
        assert_eq!(cycles.len(), 1, "{f:?}");
        assert!(
            cycles[0].message.contains("pair.a -> pair.b -> pair.a"),
            "{}",
            cycles[0].message
        );
        assert!(
            cycles[0].message.contains("pair.rs:"),
            "{}",
            cycles[0].message
        );
    }

    #[test]
    fn r7_fires_on_send_under_guard() {
        let f = run(&[(
            "crates/x/src/srv.rs",
            "struct S { queue: Mutex<u32> }\nimpl S {\n    fn drain(&self, tx: Sender<u32>) {\n        let q = lock_or_recover(&self.queue);\n        let _ = tx.send(1);\n        drop(q);\n    }\n}\n",
        )]);
        assert!(rules_of(&f).contains(&RULE_HOLD_ACROSS_IO), "{f:?}");
        assert!(f[0].message.contains("srv.queue"), "{}", f[0].message);
    }

    #[test]
    fn r7_fires_on_blob_call_under_guard_and_clean_twin_passes() {
        let dirty = run(&[(
            "crates/x/src/st.rs",
            "struct S { cache: Mutex<u32>, blobs: Arc<dyn BlobStore> }\nimpl S {\n    fn load(&self) {\n        let g = lock_or_recover(&self.cache);\n        let _ = self.blobs.put(p, d);\n        drop(g);\n    }\n}\n",
        )]);
        assert!(rules_of(&dirty).contains(&RULE_HOLD_ACROSS_IO), "{dirty:?}");
        assert!(
            dirty[0].message.contains("BlobStore::put"),
            "{}",
            dirty[0].message
        );
        let clean = run(&[(
            "crates/x/src/st.rs",
            "struct S { cache: Mutex<u32>, blobs: Arc<dyn BlobStore> }\nimpl S {\n    fn load(&self) {\n        {\n            let _g = lock_or_recover(&self.cache);\n        }\n        let _ = self.blobs.put(p, d);\n    }\n}\n",
        )]);
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn r7_worker_loop_wait_with_own_guard_is_clean() {
        let f = run(&[(
            "crates/x/src/srv.rs",
            "struct S { queue: Mutex<u32>, wake: Condvar }\nimpl S {\n    fn worker(&self) {\n        let mut q = lock_or_recover(&self.queue);\n        q = wait_or_recover(&self.wake, q);\n        drop(q);\n    }\n}\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r7_foreign_guard_across_wait_fires() {
        let f = run(&[(
            "crates/x/src/srv.rs",
            "struct S { queue: Mutex<u32>, other: Mutex<u32>, wake: Condvar }\nimpl S {\n    fn worker(&self) {\n        let o = lock_or_recover(&self.other);\n        let mut q = lock_or_recover(&self.queue);\n        q = wait_or_recover(&self.wake, q);\n        drop(q);\n        drop(o);\n    }\n}\n",
        )]);
        let waits: Vec<_> = f
            .iter()
            .filter(|f| f.message.contains("condvar wait"))
            .collect();
        assert_eq!(waits.len(), 1, "{f:?}");
        assert!(
            waits[0].message.contains("srv.other"),
            "{}",
            waits[0].message
        );
    }

    #[test]
    fn r8_fires_on_unblessed_channel_and_bare_send() {
        let f = run(&[(
            "crates/x/src/ch.rs",
            "fn go(tx: Sender<u32>) {\n    let (tx2, rx2) = mpsc::channel();\n    tx.send(1);\n    let _ = (tx2, rx2);\n}\n",
        )]);
        let r8: Vec<_> = f
            .iter()
            .filter(|f| f.rule == RULE_CHANNEL_HYGIENE)
            .collect();
        assert_eq!(r8.len(), 2, "{f:?}");
        assert!(r8[0].message.contains("unbounded") || r8[1].message.contains("unbounded"));
    }

    #[test]
    fn r8_blessed_module_channel_is_clean() {
        let f = run(&[(
            "crates/cubestore/src/server.rs",
            "fn reply_channel() {\n    let (tx, rx) = mpsc::channel();\n    let _ = (tx, rx);\n}\n",
        )]);
        assert!(
            !rules_of(&f).contains(&RULE_CHANNEL_HYGIENE),
            "server.rs is blessed: {f:?}"
        );
    }

    #[test]
    fn r9_fires_on_cross_crate_lock_under_guard() {
        let f = run(&[
            (
                "crates/cubestore/src/faults.rs",
                "struct F { state: Mutex<u32>, obs: ObsHandle }\nimpl F {\n    fn fire(&self) {\n        let g = lock_or_recover(&self.state);\n        self.obs.inc(n);\n        drop(g);\n    }\n}\n",
            ),
            (
                "crates/obs/src/registry.rs",
                "struct ObsHandle { instruments: Mutex<u32> }\nimpl ObsHandle {\n    fn inc(&self, n: u32) {\n        let _g = lock_or_recover(&self.instruments);\n    }\n}\n",
            ),
        ]);
        let r9: Vec<_> = f.iter().filter(|f| f.rule == RULE_GUARD_SCOPE).collect();
        assert_eq!(r9.len(), 1, "{f:?}");
        assert!(
            r9[0].message.contains("registry.instruments"),
            "{}",
            r9[0].message
        );
    }

    #[test]
    fn r9_lock_free_callee_is_clean() {
        let f = run(&[
            (
                "crates/cubestore/src/client.rs",
                "struct C { breakers: Mutex<u32>, clock: Arc<Clock> }\nimpl C {\n    fn gate(&self) {\n        let g = lock_or_recover(&self.breakers);\n        let _ = self.clock.now_us();\n        drop(g);\n    }\n}\n",
            ),
            (
                "crates/obs/src/clock.rs",
                "struct Clock { t: AtomicU64 }\nimpl Clock {\n    fn now_us(&self) -> u64 { self.t.load(Ordering::Relaxed) }\n}\n",
            ),
        ]);
        assert!(f.is_empty(), "lock-free cross-crate callee: {f:?}");
    }
}
