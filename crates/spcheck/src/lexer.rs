//! A small Rust lexer for static checks.
//!
//! `scrub` turns a source file into a same-length text where comment
//! bodies and string/char literal contents are replaced by spaces, so the
//! rule scanners in [`crate::rules`] can match tokens without being fooled
//! by `"panic!"` inside a string or `.unwrap()` inside a doc comment.
//! While scrubbing it collects:
//!
//! * every string/byte-string literal (offset, line, decoded-enough value)
//!   — rule R2 counts magic-constant literal sites;
//! * every `spcheck:allow(...)` suppression comment — the only sanctioned
//!   way to silence a finding, and only with a reason.
//!
//! `blank_test_regions` then erases `#[cfg(test)]` items (attribute through
//! the matching closing brace) so test code is never audited: tests may
//! unwrap freely.

/// A string or byte-string literal found outside comments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    /// Byte offset of the opening quote in the file.
    pub offset: usize,
    /// 1-based line of the opening quote.
    pub line: usize,
    /// The raw literal body (escapes not decoded; raw-string hashes
    /// stripped). Good enough to compare magic constants, which contain
    /// no escapes.
    pub value: String,
}

/// A parsed `// spcheck:allow(rule): reason` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// The rule name between the parentheses (empty when malformed).
    pub rule: String,
    /// Whether a non-empty reason follows `): `.
    pub has_reason: bool,
}

/// The output of [`scrub`].
#[derive(Debug)]
pub struct Scrubbed {
    /// Source text with comments and literal bodies spaced out. Same byte
    /// length and line structure as the input.
    pub text: String,
    /// String literals, in file order.
    pub literals: Vec<StrLit>,
    /// Suppression comments, in file order.
    pub suppressions: Vec<Suppression>,
}

fn blank(out: &mut [u8], from: usize, to: usize) {
    for b in out.iter_mut().take(to).skip(from) {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

fn line_of(bytes: &[u8], offset: usize) -> usize {
    1 + bytes.iter().take(offset).filter(|&&b| b == b'\n').count()
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parse a line comment for the suppression marker.
fn parse_suppression(comment: &str) -> Option<(String, bool)> {
    let idx = comment.find("spcheck:allow")?;
    let rest = &comment[idx + "spcheck:allow".len()..];
    let Some(rest) = rest.strip_prefix('(') else {
        return Some((String::new(), false)); // malformed: no rule list
    };
    let Some(close) = rest.find(')') else {
        return Some((String::new(), false)); // malformed: unclosed
    };
    let rule = rest.get(..close).unwrap_or("").trim().to_string();
    let tail = rest.get(close + 1..).unwrap_or("");
    let has_reason = tail
        .trim_start()
        .strip_prefix(':')
        .is_some_and(|r| !r.trim().is_empty());
    Some((rule, has_reason))
}

/// Scrub comments and literals out of `src`. See the module docs.
pub fn scrub(src: &str) -> Scrubbed {
    let bytes = src.as_bytes();
    let n = bytes.len();
    let mut out = bytes.to_vec();
    let mut literals = Vec::new();
    let mut suppressions = Vec::new();
    let mut i = 0;

    // Consume a quoted string starting at the `"` at position `start`,
    // honouring `\` escapes. Returns the position just past the closing
    // quote.
    let string_end = |start: usize| -> usize {
        let mut j = start + 1;
        while j < n {
            match bytes.get(j) {
                Some(b'\\') => j += 2,
                Some(b'"') => return j + 1,
                Some(_) => j += 1,
                None => break,
            }
        }
        n
    };

    while i < n {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        match b {
            b'/' if next == Some(b'/') => {
                let start = i;
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
                let comment = src.get(start..i).unwrap_or("");
                if let Some((rule, has_reason)) = parse_suppression(comment) {
                    suppressions.push(Suppression {
                        line: line_of(bytes, start),
                        rule,
                        has_reason,
                    });
                }
                blank(&mut out, start, i);
            }
            b'/' if next == Some(b'*') => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                let start = i;
                i = string_end(start);
                literals.push(StrLit {
                    offset: start,
                    line: line_of(bytes, start),
                    value: src
                        .get(start + 1..i.saturating_sub(1))
                        .unwrap_or("")
                        .to_string(),
                });
                blank(&mut out, start, i);
            }
            b'r' | b'b' if i == 0 || !is_ident(bytes[i - 1]) => {
                // Possible raw/byte string: b"..", r"..", br#".."#, r#".."#.
                let mut j = i;
                if bytes[j] == b'b' {
                    j += 1;
                }
                let raw = bytes.get(j) == Some(&b'r');
                if raw {
                    j += 1;
                }
                let mut hashes = 0usize;
                while raw && bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) != Some(&b'"') {
                    i += 1; // plain identifier starting with r/b
                    continue;
                }
                let start = i;
                let body_start = j + 1;
                let end = if raw {
                    let mut closer = vec![b'"'];
                    closer.extend(std::iter::repeat_n(b'#', hashes));
                    find_bytes(bytes, &closer, body_start)
                        .map(|p| p + closer.len())
                        .unwrap_or(n)
                } else {
                    string_end(j)
                };
                literals.push(StrLit {
                    offset: start,
                    line: line_of(bytes, start),
                    value: src
                        .get(body_start..end.saturating_sub(1 + if raw { hashes } else { 0 }))
                        .unwrap_or("")
                        .to_string(),
                });
                blank(&mut out, start, end);
                i = end;
            }
            b'\'' => {
                // Char literal vs lifetime. `'\..'` and `'<one char>'` are
                // chars; anything else (`'a` in generics) is a lifetime.
                if next == Some(b'\\') {
                    let mut j = i + 2;
                    while j < n && bytes[j] != b'\'' {
                        j += if bytes[j] == b'\\' { 2 } else { 1 };
                    }
                    let end = (j + 1).min(n);
                    blank(&mut out, i, end);
                    i = end;
                } else if let Some(&c) = bytes.get(i + 1) {
                    let l = utf8_len(c);
                    if bytes.get(i + 1 + l) == Some(&b'\'') {
                        let end = i + l + 2;
                        blank(&mut out, i, end);
                        i = end;
                    } else {
                        i += 1; // lifetime
                    }
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }

    let text = String::from_utf8(out).unwrap_or_else(|e| {
        // Scrubbing only ever blanks whole multi-byte sequences, so this
        // cannot happen on valid UTF-8 input; recover rather than die.
        String::from_utf8_lossy(e.as_bytes()).into_owned()
    });
    Scrubbed {
        text,
        literals,
        suppressions,
    }
}

fn find_bytes(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() || from >= haystack.len() {
        return None;
    }
    haystack
        .get(from..)?
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Blank every `#[cfg(test)]` item (attribute through the matching `}`)
/// in already-scrubbed text. Returns the blanked byte ranges so callers
/// can also drop literals that fell inside them.
pub fn blank_test_regions(text: &mut String) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut search = 0usize;
    loop {
        let bytes = text.as_bytes();
        let Some(pos) = find_bytes(bytes, b"#[cfg(test)]", search) else {
            break;
        };
        // Find the item's opening brace, then its match.
        let Some(open) = bytes.iter().skip(pos).position(|&b| b == b'{') else {
            search = pos + 1;
            continue;
        };
        let open = pos + open;
        let mut depth = 0usize;
        let mut end = text.len();
        for (j, &b) in bytes.iter().enumerate().skip(open) {
            if b == b'{' {
                depth += 1;
            } else if b == b'}' {
                depth -= 1;
                if depth == 0 {
                    end = j + 1;
                    break;
                }
            }
        }
        // Blank in place (safe: scrubbed text is ASCII in code positions).
        let mut buf = std::mem::take(text).into_bytes();
        blank(&mut buf, pos, end);
        *text = String::from_utf8_lossy(&buf).into_owned();
        ranges.push((pos, end));
        search = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked_but_structure_kept() {
        let s = scrub("let x = 1; // .unwrap() here\nlet y = 2;\n");
        assert!(!s.text.contains("unwrap"));
        assert_eq!(s.text.lines().count(), 2);
        assert_eq!(
            s.text.len(),
            "let x = 1; // .unwrap() here\nlet y = 2;\n".len()
        );
    }

    #[test]
    fn nested_block_comments() {
        let s = scrub("a /* outer /* inner */ still comment */ b.unwrap()");
        assert!(s.text.contains("b.unwrap()"));
        assert!(!s.text.contains("inner"));
        assert!(!s.text.contains("still"));
    }

    #[test]
    fn strings_are_captured_and_blanked() {
        let s = scrub(r#"let m = b"SPSK1"; let t = "panic!(\"x\")";"#);
        assert!(!s.text.contains("panic!"));
        assert_eq!(s.literals[0].value, "SPSK1");
        assert_eq!(s.literals.len(), 2);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let s = scrub(r###"let r = r#"has "quotes" and // not a comment"#; x.unwrap()"###);
        assert!(s.text.contains("x.unwrap()"));
        assert!(!s.text.contains("quotes"));
        assert_eq!(s.literals.len(), 1);
        assert!(s.literals[0].value.contains("quotes"));
    }

    #[test]
    fn string_with_comment_markers_inside() {
        let s = scrub("let u = \"// not a comment\"; y.expect(\"msg\")");
        assert!(s.text.contains("y.expect("));
        assert!(!s.text.contains("not a comment"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let s = scrub("fn f<'a>(x: &'a str) -> char { let q = '\\''; let z = 'b'; q }");
        // Lifetimes survive; char literal contents do not.
        assert!(s.text.contains("<'a>"));
        assert!(s.text.contains("&'a str"));
        assert!(!s.text.contains("'b'"));
    }

    #[test]
    fn suppression_with_reason_parses() {
        let s = scrub("// spcheck:allow(no_panic): protocol invariant\nx.unwrap();\n");
        assert_eq!(s.suppressions.len(), 1);
        let sup = &s.suppressions[0];
        assert_eq!(sup.line, 1);
        assert_eq!(sup.rule, "no_panic");
        assert!(sup.has_reason);
    }

    #[test]
    fn suppression_without_reason_is_flagged_as_reasonless() {
        for c in [
            "// spcheck:allow(no_panic)\n",
            "// spcheck:allow(no_panic):\n",
            "// spcheck:allow(no_panic):   \n",
        ] {
            let s = scrub(c);
            assert_eq!(s.suppressions.len(), 1, "{c:?}");
            assert!(!s.suppressions[0].has_reason, "{c:?}");
        }
    }

    #[test]
    fn malformed_suppression_has_empty_rule() {
        let s = scrub("// spcheck:allow no_panic: forgot parens\n");
        assert_eq!(s.suppressions.len(), 1);
        assert_eq!(s.suppressions[0].rule, "");
    }

    #[test]
    fn cfg_test_region_is_blanked() {
        let src = "fn prod() { a.get(0); }\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() { b.get(1); }\n";
        let mut s = scrub(src);
        let ranges = blank_test_regions(&mut s.text);
        assert_eq!(ranges.len(), 1);
        assert!(!s.text.contains("unwrap"));
        assert!(s.text.contains("fn prod()"));
        assert!(s.text.contains("fn after()"));
    }

    #[test]
    fn cfg_test_brace_matching_handles_nesting() {
        let src = "#[cfg(test)]\nmod tests {\n  mod inner { fn t() { x.unwrap(); } }\n}\nfn prod() { y.unwrap(); }\n";
        let mut s = scrub(src);
        blank_test_regions(&mut s.text);
        // Only the production unwrap survives.
        assert_eq!(s.text.matches(".unwrap").count(), 1);
        assert!(s.text.contains("fn prod()"));
    }
}
