//! Pass 1 of the concurrency analyzer: a lightweight item/scope parser.
//!
//! Takes the scrubbed, test-blanked text of every workspace file (from
//! [`crate::lexer`]) and produces per-file facts:
//!
//! * **lock-field declarations** — struct fields typed `Mutex<_>`,
//!   `RwLock<_>`, or `Condvar`. Each becomes a named *lock class*
//!   `<file-stem>.<field>` (e.g. `server.queue`, `store.cache`);
//! * **ident → type map** — field and parameter declarations, so pass 2
//!   can resolve `self.store.query(..)` to `CubeStore::query`;
//! * **impl-block context** — which type (and trait) each method
//!   belongs to;
//! * **per-function event streams** — lock acquisitions (with the set of
//!   guards already held), guard drop points, call sites, channel
//!   creation / `send` / `recv`, `Condvar` waits, and `thread::join`.
//!
//! The guard-lifetime model follows Rust's drop rules closely enough for
//! a linter: a named guard (`let g = lock_or_recover(..)`) lives until
//! `drop(g)` or the end of its block; a temporary lives until the end of
//! its statement; an `if let` / `while let` / `match` scrutinee
//! temporary lives through the whole body block (the edition-2021
//! behaviour that makes `if let Some(x) = lock(..).get(k)` hold the
//! guard across the branch). Closures are walked inline as part of the
//! enclosing function, which over-approximates `thread::spawn` bodies —
//! acceptable for a gate that wants false positives over false
//! negatives, and suppressible where wrong.

use std::collections::BTreeMap;

/// The workspace's blessed acquisition primitive (`common::sync`).
pub const LOCK_FN: &str = "lock_or_recover";
/// The blessed condvar-wait primitive (`common::sync`).
pub const WAIT_FN: &str = "wait_or_recover";
/// The storage trait whose methods count as blob IO under a guard.
pub const BLOB_TRAIT: &str = "BlobStore";
/// Blob-IO method names on a [`BLOB_TRAIT`]-typed receiver.
pub const BLOB_METHODS: &[&str] = &["put", "get", "list", "delete"];

/// What kind of lock a declared field is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
    Condvar,
}

impl LockKind {
    pub fn name(self) -> &'static str {
        match self {
            LockKind::Mutex => "Mutex",
            LockKind::RwLock => "RwLock",
            LockKind::Condvar => "Condvar",
        }
    }
}

/// A declared lock-typed struct field.
#[derive(Debug, Clone)]
pub struct LockField {
    pub field: String,
    pub kind: LockKind,
    pub line: usize,
}

/// How a call site names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `Type::method(..)` — `Self` is resolved by pass 2.
    Qualified(String),
    /// `self.method(..)`.
    SelfMethod,
    /// `recv.field.method(..)` — the field nearest the method.
    FieldMethod(String),
    /// `method(..)` with no receiver or path.
    Bare,
    /// Receiver could not be read lexically (e.g. a call-result chain).
    UnknownRecv,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub method: String,
    pub kind: CallKind,
    pub line: usize,
    /// Lock classes held when the call happens, sorted + deduped.
    pub held: Vec<String>,
}

/// One event in a function body, in source order.
#[derive(Debug, Clone)]
pub enum Event {
    /// A lock acquisition; `held` excludes the class being acquired
    /// unless it was already held (a re-entrant acquire shows itself).
    Acquire {
        class: String,
        line: usize,
        held: Vec<String>,
    },
    /// A condvar wait; `passed` is the class of the guard handed to the
    /// wait (which is *expected* to be held), `held` is everything held.
    Wait {
        passed: Option<String>,
        line: usize,
        held: Vec<String>,
    },
    Call(CallSite),
    /// `mpsc::channel()` — the unbounded constructor only.
    ChannelNew {
        line: usize,
    },
    Send {
        line: usize,
        handled: bool,
        held: Vec<String>,
    },
    Recv {
        line: usize,
        held: Vec<String>,
    },
    /// `handle.join()` with no arguments (thread join, not str::join).
    Join {
        line: usize,
        held: Vec<String>,
    },
}

impl Event {
    pub fn line(&self) -> usize {
        match self {
            Event::Acquire { line, .. }
            | Event::Wait { line, .. }
            | Event::ChannelNew { line }
            | Event::Send { line, .. }
            | Event::Recv { line, .. }
            | Event::Join { line, .. } => *line,
            Event::Call(c) => c.line,
        }
    }
}

/// One parsed function (or method) body.
#[derive(Debug, Clone)]
pub struct FnBody {
    pub name: String,
    pub impl_type: Option<String>,
    pub trait_name: Option<String>,
    pub line: usize,
    pub events: Vec<Event>,
}

/// Everything pass 1 knows about one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub rel: String,
    /// Lock-class prefix: the file stem, or the crate name for
    /// `lib.rs` / `mod.rs` / `main.rs`.
    pub stem: String,
    pub krate: String,
    pub lock_fields: Vec<LockField>,
    pub ident_types: BTreeMap<String, String>,
    /// `impl Trait for Type` pairs seen in this file.
    pub trait_impls: Vec<(String, String)>,
    pub fns: Vec<FnBody>,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn line_of(text: &str, offset: usize) -> usize {
    1 + text
        .as_bytes()
        .iter()
        .take(offset)
        .filter(|&&b| b == b'\n')
        .count()
}

fn prev_nonspace(bytes: &[u8], pos: usize) -> Option<(usize, u8)> {
    bytes
        .iter()
        .enumerate()
        .take(pos)
        .rev()
        .find(|&(_, &b)| b != b' ' && b != b'\t' && b != b'\n')
        .map(|(i, &b)| (i, b))
}

fn next_nonspace(bytes: &[u8], pos: usize) -> Option<(usize, u8)> {
    bytes
        .iter()
        .enumerate()
        .skip(pos)
        .find(|&(_, &b)| b != b' ' && b != b'\t' && b != b'\n')
        .map(|(i, &b)| (i, b))
}

/// Byte position just past the `)` matching the `(` at `open`.
fn match_paren(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Byte position just past the `}` matching the `{` at `open`.
fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Whole-token occurrences of `word`, ascending.
fn word_offsets(text: &str, word: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = text
        .get(from..)
        .and_then(|t| t.find(word))
        .map(|p| p + from)
    {
        let before_ok = pos == 0 || !is_ident(bytes[pos - 1]);
        let after = pos + word.len();
        let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
        if before_ok && after_ok {
            out.push(pos);
        }
        from = pos + word.len();
    }
    out
}

/// Last identifier in `expr` (the terminal field of a path like
/// `&self.shared.queue`). Empty when there is none.
fn terminal_ident(expr: &str) -> String {
    let bytes = expr.as_bytes();
    let mut end = bytes.len();
    while end > 0 && !is_ident(bytes[end - 1]) {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident(bytes[start - 1]) {
        start -= 1;
    }
    expr.get(start..end).unwrap_or("").to_string()
}

/// The terminal type name of a declaration tail: strips references,
/// lifetimes, `mut`/`dyn`/`impl`, and common smart-pointer / container
/// wrappers, then takes the last path segment. `Arc<dyn BlobStore>` →
/// `BlobStore`; `Mutex<BTreeMap<K, V>>` → `BTreeMap`.
fn terminal_type(decl: &str) -> String {
    let mut s = decl.trim();
    loop {
        let before = s;
        s = s.trim_start_matches('&').trim_start();
        if s.starts_with('\'') {
            // lifetime token
            let end = s
                .bytes()
                .skip(1)
                .position(|b| !is_ident(b))
                .map(|p| p + 1)
                .unwrap_or(s.len());
            s = s.get(end..).unwrap_or("").trim_start();
        }
        for kw in ["mut ", "dyn ", "impl "] {
            if let Some(rest) = s.strip_prefix(kw) {
                s = rest.trim_start();
            }
        }
        for w in ["Arc", "Box", "Rc", "Option", "Vec", "Mutex", "RwLock"] {
            if let Some(rest) = s.strip_prefix(w) {
                if rest.trim_start().starts_with('<') {
                    s = rest.trim_start().get(1..).unwrap_or("").trim_start();
                }
            }
        }
        if s == before {
            break;
        }
    }
    // Last segment of the leading path.
    let mut last = String::new();
    let mut cur = String::new();
    let mut bytes = s.bytes().peekable();
    while let Some(b) = bytes.next() {
        if is_ident(b) {
            cur.push(b as char);
        } else if b == b':' && bytes.peek() == Some(&b':') {
            bytes.next();
            cur.clear();
            continue;
        } else {
            break;
        }
        if bytes.peek().is_none() {
            break;
        }
    }
    if !cur.is_empty() {
        last = cur;
    }
    last
}

/// Crate name and lock-class stem for a workspace-relative path.
fn stem_of(rel: &str) -> (String, String) {
    let krate = rel
        .split('/')
        .skip_while(|s| *s != "crates")
        .nth(1)
        .unwrap_or("workspace")
        .to_string();
    let file = rel.rsplit('/').next().unwrap_or(rel);
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    let stem = if matches!(stem, "lib" | "mod" | "main") {
        krate.clone()
    } else {
        stem.to_string()
    };
    (krate, stem)
}

/// Strip a leading `pub` / `pub(..)` visibility prefix.
fn strip_vis(t: &str) -> &str {
    let Some(rest) = t.strip_prefix("pub") else {
        return t;
    };
    if rest.bytes().next().is_some_and(is_ident) {
        return t; // `pubsub` or similar
    }
    let rest = rest.trim_start();
    if let Some(after) = rest.strip_prefix('(') {
        after
            .split_once(')')
            .map(|(_, tail)| tail.trim_start())
            .unwrap_or("")
    } else {
        rest
    }
}

/// Split on `,` at zero bracket depth (`Mutex<BTreeMap<K, V>>` stays
/// whole).
fn split_top_level(s: &str) -> Vec<&str> {
    let mut depth = 0i32;
    let mut start = 0;
    let mut out = Vec::new();
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'<' | b'(' | b'[' => depth += 1,
            b'>' | b')' | b']' => depth -= 1,
            b',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// One `name: Type` piece → its field name and type tail, or `None` for
/// anything else (paths, constructor lines, match arms).
fn parse_decl(piece: &str) -> Option<(&str, &str)> {
    let t = strip_vis(piece.trim_start());
    let bytes = t.as_bytes();
    let mut end = 0;
    while end < bytes.len() && is_ident(bytes[end]) {
        end += 1;
    }
    if end == 0 || bytes.first().is_some_and(|b| b.is_ascii_digit()) {
        return None;
    }
    let name = &t[..end];
    let tail = t[end..].trim_start().strip_prefix(':')?;
    if tail.starts_with(':') || tail.contains('(') {
        return None; // path (`A::B`) or a value/constructor line
    }
    Some((name, tail))
}

/// Record one field/param declaration.
fn record_decl(
    name: &str,
    tail: &str,
    line: usize,
    lock_fields: &mut Vec<LockField>,
    types: &mut BTreeMap<String, String>,
) {
    let kind = if tail.contains("Mutex<") {
        Some(LockKind::Mutex)
    } else if tail.contains("RwLock<") {
        Some(LockKind::RwLock)
    } else if tail.contains("Condvar") {
        Some(LockKind::Condvar)
    } else {
        None
    };
    if let Some(kind) = kind {
        lock_fields.push(LockField {
            field: name.to_string(),
            kind,
            line,
        });
    }
    let ty = terminal_type(tail);
    if !ty.is_empty() {
        types.entry(name.to_string()).or_insert(ty);
    }
}

/// Scan declaration-shaped lines (`name: Type`) for lock fields and
/// ident types. Handles both rustfmt one-field-per-line bodies and
/// single-line `struct S { a: Mutex<u32> }` declarations. Lines with
/// `=>`, calls, or attribute syntax are skipped.
fn scan_decls(text: &str, lock_fields: &mut Vec<LockField>, types: &mut BTreeMap<String, String>) {
    for (idx, raw) in text.lines().enumerate() {
        let t = raw.trim_start();
        if t.starts_with('#') || raw.contains("=>") {
            continue;
        }
        let vis_stripped = strip_vis(t);
        let is_struct = vis_stripped.starts_with("struct")
            && !vis_stripped
                .as_bytes()
                .get("struct".len())
                .is_some_and(|&b| is_ident(b));
        if is_struct {
            // Single-line struct: parse each `field: Type` inside `{}`.
            if let (Some(open), Some(close)) = (t.find('{'), t.rfind('}')) {
                if open < close {
                    for piece in split_top_level(&t[open + 1..close]) {
                        if let Some((name, tail)) = parse_decl(piece) {
                            record_decl(name, tail, idx + 1, lock_fields, types);
                        }
                    }
                }
            }
            continue;
        }
        if let Some((name, tail)) = parse_decl(t) {
            record_decl(name, tail, idx + 1, lock_fields, types);
        }
    }
}

/// One `impl` block: byte range of the body plus its type/trait names.
struct ImplBlock {
    start: usize,
    end: usize,
    ty: String,
    trait_name: Option<String>,
}

fn scan_impls(text: &str) -> Vec<ImplBlock> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for pos in word_offsets(text, "impl") {
        // `-> impl Trait` and `impl Fn(..)` are type positions, not blocks.
        if let Some((_, p)) = prev_nonspace(bytes, pos) {
            if !matches!(p, b'}' | b';' | b']' | b'{') {
                continue;
            }
        }
        let mut i = pos + 4;
        if let Some((j, b'<')) = next_nonspace(bytes, i) {
            // Skip the generic parameter list, tolerating `->` inside.
            let mut depth = 0i32;
            i = j;
            while i < bytes.len() {
                match bytes[i] {
                    b'<' => depth += 1,
                    b'-' if bytes.get(i + 1) == Some(&b'>') => {
                        i += 1;
                    }
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        let Some(open_rel) = text.get(i..).and_then(|t| t.find('{')) else {
            continue;
        };
        let open = i + open_rel;
        let header = text.get(i..open).unwrap_or("");
        if header.contains('(') || header.contains(';') {
            continue;
        }
        let (trait_name, ty_text) = match header.split_once(" for ") {
            Some((tr, ty)) => (Some(terminal_type(tr)), ty),
            None => (None, header),
        };
        let ty = terminal_type(ty_text);
        if ty.is_empty() {
            continue;
        }
        out.push(ImplBlock {
            start: open,
            end: match_brace(bytes, open),
            ty,
            trait_name: trait_name.filter(|t| !t.is_empty()),
        });
    }
    out
}

/// One function site: name, params text, body byte range.
struct FnSite {
    name: String,
    line: usize,
    params: (usize, usize),
    body: (usize, usize),
}

fn scan_fns(text: &str) -> Vec<FnSite> {
    let bytes = text.as_bytes();
    let mut out: Vec<FnSite> = Vec::new();
    let mut last_body_end = 0usize;
    for pos in word_offsets(text, "fn") {
        if pos < last_body_end {
            continue; // nested fn: walked inline with its parent
        }
        let Some((mut i, b)) = next_nonspace(bytes, pos + 2) else {
            continue;
        };
        if !is_ident(b) {
            continue;
        }
        let start = i;
        while i < bytes.len() && is_ident(bytes[i]) {
            i += 1;
        }
        let name = text.get(start..i).unwrap_or("").to_string();
        if let Some((j, b'<')) = next_nonspace(bytes, i) {
            // Generic list on the fn itself.
            let mut depth = 0i32;
            i = j;
            while i < bytes.len() {
                match bytes[i] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        let Some((open, b'(')) = next_nonspace(bytes, i) else {
            continue;
        };
        let params_end = match_paren(bytes, open);
        // Return type / where clause runs to the body `{` or a `;`.
        let mut j = params_end;
        let mut body_open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    body_open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let Some(body_open) = body_open else {
            continue; // trait method declaration without a body
        };
        let body_end = match_brace(bytes, body_open);
        last_body_end = body_end;
        out.push(FnSite {
            name,
            line: line_of(text, pos),
            params: (open + 1, params_end.saturating_sub(1)),
            body: (body_open + 1, body_end.saturating_sub(1)),
        });
    }
    out
}

/// Merge `name: Type` params into the file's ident-type map.
fn scan_params(params: &str, types: &mut BTreeMap<String, String>) {
    let mut depth = 0i32;
    let mut start = 0usize;
    let bytes = params.as_bytes();
    let mut parts = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' | b'>' => depth -= 1,
            b',' if depth == 0 => {
                parts.push(&params[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&params[start..]);
    for part in parts {
        let p = part.trim().trim_start_matches("mut ").trim_start();
        let Some((name, ty)) = p.split_once(':') else {
            continue;
        };
        let name = name.trim();
        if name.is_empty() || !name.bytes().all(is_ident) || name == "self" {
            continue;
        }
        let ty = terminal_type(ty);
        if !ty.is_empty() {
            types.entry(name.to_string()).or_insert(ty);
        }
    }
}

/// Identifiers never treated as call targets.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "break", "continue", "move", "in", "as",
    "where", "unsafe", "ref", "mut", "box", "else", "fn", "let", "use", "pub", "crate", "super",
    "mod", "const", "static", "type", "struct", "enum", "union", "trait", "impl", "dyn", "Some",
    "None", "Ok", "Err", "await", "async", "yield",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GuardState {
    /// Statement temporary: released at `;` (or `{` of a plain block).
    Pending,
    /// `let name = ..`: released at `drop(name)` or block end.
    Named,
    /// `if let` / `match` scrutinee: released at the body's `}`.
    Scrutinee,
}

#[derive(Debug, Clone)]
struct Guard {
    name: Option<String>,
    class: String,
    depth: i32,
    state: GuardState,
    released: bool,
}

/// Resolution context shared by every body walk of one file.
pub(crate) struct ResolveCtx<'a> {
    pub stem: &'a str,
    pub local_fields: &'a [LockField],
    /// field name → (declaring stem, kind) across the whole workspace.
    pub global_fields: &'a BTreeMap<String, Vec<(String, LockKind)>>,
}

impl ResolveCtx<'_> {
    /// The lock class for an acquisition whose terminal ident is `field`:
    /// same-file declaration first, then a workspace-unique declaration,
    /// else a file-local fallback class (e.g. `engine.slot` for a local
    /// or parameter lock that is not a struct field).
    fn class_of(&self, field: &str) -> String {
        if self.local_fields.iter().any(|f| f.field == field) {
            return format!("{}.{}", self.stem, field);
        }
        if let Some(decls) = self.global_fields.get(field) {
            if decls.len() == 1 {
                return format!("{}.{}", decls[0].0, field);
            }
        }
        format!("{}.{}", self.stem, field)
    }

    fn declared_kind(&self, field: &str) -> Option<LockKind> {
        if let Some(f) = self.local_fields.iter().find(|f| f.field == field) {
            return Some(f.kind);
        }
        self.global_fields
            .get(field)
            .and_then(|d| if d.len() == 1 { Some(d[0].1) } else { None })
    }
}

fn held_classes(guards: &[Guard]) -> Vec<String> {
    let mut held: Vec<String> = guards
        .iter()
        .filter(|g| !g.released)
        .map(|g| g.class.clone())
        .collect();
    held.sort();
    held.dedup();
    held
}

/// Walk the receiver chain backwards from the byte before `.method`.
/// Returns the chain of idents nearest-first (e.g. `self.shared.clock.`
/// → `["clock", "shared", "self"]`), or `None` when the receiver is not
/// a plain ident path (a call-result chain).
fn receiver_chain(bytes: &[u8], dot: usize) -> Option<Vec<String>> {
    let mut chain = Vec::new();
    let mut i = dot; // position of the '.'
    loop {
        let (end, b) = prev_nonspace(bytes, i)?;
        if !is_ident(b) {
            return if chain.is_empty() { None } else { Some(chain) };
        }
        let mut start = end + 1;
        while start > 0 && is_ident(bytes[start - 1]) {
            start -= 1;
        }
        let ident = std::str::from_utf8(&bytes[start..end + 1])
            .ok()?
            .to_string();
        if ident.bytes().next().is_some_and(|b| b.is_ascii_digit()) {
            return None; // tuple index or number
        }
        chain.push(ident);
        match prev_nonspace(bytes, start) {
            Some((j, b'.')) => i = j,
            _ => return Some(chain),
        }
    }
}

/// Is the `send` whose receiver chain starts at `chain_start` a bare
/// statement whose `Result` is dropped on the floor?
fn send_unhandled(bytes: &[u8], chain_start: usize, close: usize) -> bool {
    let stmt_pos = matches!(
        prev_nonspace(bytes, chain_start),
        None | Some((_, b';')) | Some((_, b'{')) | Some((_, b'}'))
    );
    let after = next_nonspace(bytes, close).map(|(_, b)| b);
    stmt_pos && after == Some(b';')
}

/// Index just past any `.unwrap()` / `.expect(..)` chained on the guard
/// expression ending at `close`. Those adapters return the guard itself,
/// so `let g = x.lock().unwrap();` is still a named guard binding.
fn skip_guard_adapters(bytes: &[u8], mut close: usize) -> usize {
    loop {
        let Some((dot, b'.')) = next_nonspace(bytes, close) else {
            return close;
        };
        let Some((s, b)) = next_nonspace(bytes, dot + 1) else {
            return close;
        };
        if !is_ident(b) {
            return close;
        }
        let mut e = s;
        while e < bytes.len() && is_ident(bytes[e]) {
            e += 1;
        }
        if &bytes[s..e] != b"unwrap" && &bytes[s..e] != b"expect" {
            return close;
        }
        let Some((open, b'(')) = next_nonspace(bytes, e) else {
            return close;
        };
        close = match_paren(bytes, open);
    }
}

/// Walk one function body, producing its event stream.
#[allow(clippy::too_many_arguments)]
fn walk_body(text: &str, start: usize, end: usize, ctx: &ResolveCtx<'_>) -> Vec<Event> {
    let bytes = text.as_bytes();
    let mut events = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;
    let mut pending_let: Option<String> = None;
    let mut scrutinee = false;
    let mut i = start;

    let release_pending = |guards: &mut Vec<Guard>, depth: i32| {
        for g in guards.iter_mut() {
            if g.state == GuardState::Pending && g.depth == depth {
                g.released = true;
            }
        }
    };

    while i < end {
        let b = bytes[i];
        match b {
            b'{' => {
                if scrutinee {
                    for g in guards.iter_mut() {
                        if g.state == GuardState::Pending && g.depth == depth && !g.released {
                            g.state = GuardState::Scrutinee;
                            g.depth = depth + 1;
                        }
                    }
                } else {
                    // A plain `if cond {` or block start ends the
                    // condition/statement temporaries (edition 2021
                    // drops plain-`if` temporaries before the body).
                    release_pending(&mut guards, depth);
                }
                scrutinee = false;
                pending_let = None;
                depth += 1;
                i += 1;
            }
            b'}' => {
                depth -= 1;
                for g in guards.iter_mut() {
                    if g.depth > depth {
                        g.released = true;
                    }
                }
                i += 1;
            }
            b';' => {
                release_pending(&mut guards, depth);
                pending_let = None;
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'>') => i += 2,
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let wstart = i;
                while i < end && is_ident(bytes[i]) {
                    i += 1;
                }
                let word = &text[wstart..i];
                match word {
                    "let" => {
                        // `let [mut] NAME [: Ty] = ..` arms the binder.
                        let mut j = i;
                        if let Some((k, b)) = next_nonspace(bytes, j) {
                            if is_ident(b) {
                                let mut e = k;
                                while e < end && is_ident(bytes[e]) {
                                    e += 1;
                                }
                                let mut name = &text[k..e];
                                if name == "mut" {
                                    if let Some((k2, b2)) = next_nonspace(bytes, e) {
                                        if is_ident(b2) {
                                            let mut e2 = k2;
                                            while e2 < end && is_ident(bytes[e2]) {
                                                e2 += 1;
                                            }
                                            name = &text[k2..e2];
                                            e = e2;
                                        }
                                    }
                                }
                                j = e;
                                match next_nonspace(bytes, j) {
                                    Some((eq, b'=')) if bytes.get(eq + 1) != Some(&b'=') => {
                                        pending_let = Some(name.to_string());
                                    }
                                    Some((c, b':')) if bytes.get(c + 1) != Some(&b':') => {
                                        // Ascribed: scan to `=` within the statement.
                                        let mut k2 = c + 1;
                                        while k2 < end
                                            && !matches!(bytes[k2], b'=' | b';' | b'{' | b'(')
                                        {
                                            k2 += 1;
                                        }
                                        if k2 < end && bytes[k2] == b'=' {
                                            pending_let = Some(name.to_string());
                                        }
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                    "if" | "while" => {
                        if let Some((k, b'l')) = next_nonspace(bytes, i) {
                            if text.get(k..k + 3) == Some("let")
                                && bytes.get(k + 3).is_none_or(|&b| !is_ident(b))
                            {
                                scrutinee = true;
                                i = k + 3;
                            }
                        }
                    }
                    "match" => {
                        // `match` the keyword, not a method: a method call
                        // was consumed by the call path below (receiver
                        // chain requires a preceding `.`, which an ident
                        // cannot follow here because word_offsets-style
                        // boundaries applied).
                        if prev_nonspace(bytes, wstart).map(|(_, b)| b) != Some(b'.') {
                            scrutinee = true;
                        }
                    }
                    "drop" => {
                        if let Some((open, b'(')) = next_nonspace(bytes, i) {
                            let close = match_paren(bytes, open);
                            let arg = terminal_ident(&text[open + 1..close.saturating_sub(1)]);
                            for g in guards.iter_mut() {
                                if g.name.as_deref() == Some(arg.as_str()) {
                                    g.released = true;
                                }
                            }
                            i = close;
                        }
                    }
                    w if w == LOCK_FN => {
                        if let Some((open, b'(')) = next_nonspace(bytes, i) {
                            let close = match_paren(bytes, open);
                            let arg = terminal_ident(&text[open + 1..close.saturating_sub(1)]);
                            let class = ctx.class_of(&arg);
                            events.push(Event::Acquire {
                                class: class.clone(),
                                line: line_of(text, wstart),
                                held: held_classes(&guards),
                            });
                            // `let x = lock_or_recover(&m).get(..);` binds the
                            // chain result, not the guard: the guard is a
                            // temporary dropped at end of statement.
                            let chained = next_nonspace(bytes, skip_guard_adapters(bytes, close))
                                .map(|(_, b)| b)
                                == Some(b'.');
                            let (name, state) = match pending_let.take() {
                                Some(n) if n != "_" && !chained => (Some(n), GuardState::Named),
                                _ => (None, GuardState::Pending),
                            };
                            guards.push(Guard {
                                name,
                                class,
                                depth,
                                state,
                                released: false,
                            });
                            i = close;
                        }
                    }
                    w if w == WAIT_FN => {
                        if let Some((open, b'(')) = next_nonspace(bytes, i) {
                            let close = match_paren(bytes, open);
                            let args = &text[open + 1..close.saturating_sub(1)];
                            let passed =
                                args.rsplit(',')
                                    .next()
                                    .map(terminal_ident)
                                    .and_then(|name| {
                                        guards
                                            .iter()
                                            .find(|g| {
                                                !g.released && g.name.as_deref() == Some(&name)
                                            })
                                            .map(|g| g.class.clone())
                                    });
                            events.push(Event::Wait {
                                passed,
                                line: line_of(text, wstart),
                                held: held_classes(&guards),
                            });
                            i = close;
                        }
                    }
                    _ => {
                        let Some((open, b'(')) = next_nonspace(bytes, i) else {
                            continue;
                        };
                        if open != i && bytes.get(i) == Some(&b'!') {
                            continue; // macro
                        }
                        if CALL_KEYWORDS.contains(&word) {
                            continue;
                        }
                        let line = line_of(text, wstart);
                        let close = match_paren(bytes, open);
                        // Byte-exact `()`: scrubbed string literals leave
                        // spaces behind, so `join("  ")` must not look
                        // argument-free.
                        let empty_args = close == open + 2;
                        // Qualified path (`Type::method`) or method call?
                        let prev = prev_nonspace(bytes, wstart);
                        match prev {
                            Some((p, b':')) if p > 0 && bytes[p - 1] == b':' => {
                                let qual = {
                                    let mut qend = p - 1;
                                    while qend > 0 && is_ident(bytes[qend - 1]) {
                                        qend -= 1;
                                    }
                                    text[qend..p - 1].to_string()
                                };
                                if qual == "mpsc" && word == "channel" {
                                    events.push(Event::ChannelNew { line });
                                } else if !qual.is_empty() {
                                    events.push(Event::Call(CallSite {
                                        method: word.to_string(),
                                        kind: CallKind::Qualified(qual),
                                        line,
                                        held: held_classes(&guards),
                                    }));
                                }
                            }
                            Some((p, b'.')) => {
                                let chain = receiver_chain(bytes, p);
                                match word {
                                    "send" => {
                                        let chain_start = {
                                            // Walk to the front of the chain for
                                            // statement-position detection.
                                            let mut s = wstart;
                                            while let Some((d, b'.')) = prev_nonspace(bytes, s) {
                                                let Some((e, b)) = prev_nonspace(bytes, d) else {
                                                    break;
                                                };
                                                if !is_ident(b) {
                                                    break;
                                                }
                                                let mut st = e + 1;
                                                while st > 0 && is_ident(bytes[st - 1]) {
                                                    st -= 1;
                                                }
                                                s = st;
                                            }
                                            s
                                        };
                                        events.push(Event::Send {
                                            line,
                                            handled: !send_unhandled(bytes, chain_start, close),
                                            held: held_classes(&guards),
                                        });
                                    }
                                    "recv" | "recv_timeout" | "try_recv" => {
                                        events.push(Event::Recv {
                                            line,
                                            held: held_classes(&guards),
                                        });
                                    }
                                    "join" if empty_args => {
                                        events.push(Event::Join {
                                            line,
                                            held: held_classes(&guards),
                                        });
                                    }
                                    "lock" | "read" | "write" => {
                                        let field = chain
                                            .as_ref()
                                            .and_then(|c| c.first())
                                            .cloned()
                                            .unwrap_or_default();
                                        let kind = ctx.declared_kind(&field);
                                        let is_acq = match (word, kind) {
                                            ("lock", Some(LockKind::Mutex)) => true,
                                            ("read" | "write", Some(LockKind::RwLock)) => {
                                                empty_args
                                            }
                                            _ => false,
                                        };
                                        if is_acq {
                                            let class = ctx.class_of(&field);
                                            events.push(Event::Acquire {
                                                class: class.clone(),
                                                line,
                                                held: held_classes(&guards),
                                            });
                                            // As with lock_or_recover: a chained
                                            // `.lock().x(..)` guard is a statement
                                            // temp, not the let binding.
                                            let chained = next_nonspace(
                                                bytes,
                                                skip_guard_adapters(bytes, close),
                                            )
                                            .map(|(_, b)| b)
                                                == Some(b'.');
                                            let (name, state) = match pending_let.take() {
                                                Some(n) if n != "_" && !chained => {
                                                    (Some(n), GuardState::Named)
                                                }
                                                _ => (None, GuardState::Pending),
                                            };
                                            guards.push(Guard {
                                                name,
                                                class,
                                                depth,
                                                state,
                                                released: false,
                                            });
                                        }
                                    }
                                    "wait" | "wait_timeout" => {
                                        let field = chain
                                            .as_ref()
                                            .and_then(|c| c.first())
                                            .cloned()
                                            .unwrap_or_default();
                                        if ctx.declared_kind(&field) == Some(LockKind::Condvar) {
                                            let arg = terminal_ident(
                                                text[open + 1..close.saturating_sub(1)]
                                                    .split(',')
                                                    .next()
                                                    .unwrap_or(""),
                                            );
                                            let passed = guards
                                                .iter()
                                                .find(|g| {
                                                    !g.released && g.name.as_deref() == Some(&arg)
                                                })
                                                .map(|g| g.class.clone());
                                            events.push(Event::Wait {
                                                passed,
                                                line,
                                                held: held_classes(&guards),
                                            });
                                        }
                                    }
                                    _ => {
                                        let kind = match chain.as_ref().and_then(|c| c.first()) {
                                            Some(first) if first == "self" => CallKind::SelfMethod,
                                            Some(first) => CallKind::FieldMethod(first.clone()),
                                            None => CallKind::UnknownRecv,
                                        };
                                        events.push(Event::Call(CallSite {
                                            method: word.to_string(),
                                            kind,
                                            line,
                                            held: held_classes(&guards),
                                        }));
                                    }
                                }
                            }
                            _ => {
                                events.push(Event::Call(CallSite {
                                    method: word.to_string(),
                                    kind: CallKind::Bare,
                                    line,
                                    held: held_classes(&guards),
                                }));
                            }
                        }
                    }
                }
            }
            _ => i += 1,
        }
    }
    events
}

/// Parse every file of the workspace. Input is `(rel, scrubbed text)`
/// pairs — comments/strings blanked and test regions erased. Files are
/// processed in input order (the walker already sorts), so all output is
/// deterministic.
pub fn parse_workspace(files: &[(String, String)]) -> Vec<ParsedFile> {
    // Phase A: declarations, impls, fn sites for every file.
    struct Skeleton {
        lock_fields: Vec<LockField>,
        types: BTreeMap<String, String>,
        impls: Vec<ImplBlock>,
        fns: Vec<FnSite>,
    }
    let mut skels = Vec::with_capacity(files.len());
    for (_, text) in files {
        let mut lock_fields = Vec::new();
        let mut types = BTreeMap::new();
        scan_decls(text, &mut lock_fields, &mut types);
        let impls = scan_impls(text);
        let fns = scan_fns(text);
        for f in &fns {
            scan_params(&text[f.params.0..f.params.1.max(f.params.0)], &mut types);
        }
        skels.push(Skeleton {
            lock_fields,
            types,
            impls,
            fns,
        });
    }

    // Global field table for cross-file class resolution.
    let mut global_fields: BTreeMap<String, Vec<(String, LockKind)>> = BTreeMap::new();
    for ((rel, _), skel) in files.iter().zip(&skels) {
        let (_, stem) = stem_of(rel);
        for lf in &skel.lock_fields {
            global_fields
                .entry(lf.field.clone())
                .or_default()
                .push((stem.clone(), lf.kind));
        }
    }

    // Phase B: walk bodies.
    let mut out = Vec::with_capacity(files.len());
    for ((rel, text), skel) in files.iter().zip(skels) {
        let (krate, stem) = stem_of(rel);
        let ctx = ResolveCtx {
            stem: &stem,
            local_fields: &skel.lock_fields,
            global_fields: &global_fields,
        };
        let mut fns = Vec::with_capacity(skel.fns.len());
        for site in &skel.fns {
            let ctx_impl = skel
                .impls
                .iter()
                .find(|b| site.body.0 > b.start && site.body.1 <= b.end);
            fns.push(FnBody {
                name: site.name.clone(),
                impl_type: ctx_impl.map(|b| b.ty.clone()),
                trait_name: ctx_impl.and_then(|b| b.trait_name.clone()),
                line: site.line,
                events: walk_body(text, site.body.0, site.body.1, &ctx),
            });
        }
        out.push(ParsedFile {
            rel: rel.clone(),
            stem,
            krate,
            lock_fields: skel.lock_fields,
            ident_types: skel.types,
            trait_impls: skel
                .impls
                .iter()
                .filter_map(|b| b.trait_name.clone().map(|t| (t, b.ty.clone())))
                .collect(),
            fns,
        })
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(rel: &str, src: &str) -> ParsedFile {
        let mut s = crate::lexer::scrub(src);
        crate::lexer::blank_test_regions(&mut s.text);
        parse_workspace(&[(rel.to_string(), s.text)])
            .into_iter()
            .next()
            .expect("one file")
    }

    const REL: &str = "crates/cubestore/src/server.rs";

    #[test]
    fn lock_fields_and_types_are_scanned() {
        let f = parse_one(
            REL,
            "struct Shared {\n    queue: Mutex<Queue>,\n    wake: Condvar,\n    clock: Arc<Clock>,\n    store: Arc<dyn BlobStore>,\n}\n",
        );
        assert_eq!(f.lock_fields.len(), 2, "{:?}", f.lock_fields);
        assert_eq!(f.lock_fields[0].field, "queue");
        assert_eq!(f.lock_fields[0].kind, LockKind::Mutex);
        assert_eq!(f.lock_fields[1].kind, LockKind::Condvar);
        assert_eq!(f.ident_types["clock"], "Clock");
        assert_eq!(f.ident_types["store"], "BlobStore");
    }

    #[test]
    fn constructor_lines_are_not_field_decls() {
        let f = parse_one(
            REL,
            "fn mk() -> Shared {\n    Shared {\n        queue: Mutex::new(Queue::default()),\n    }\n}\nstruct Shared { queue: Mutex<Queue> }\n",
        );
        assert_eq!(f.lock_fields.len(), 1);
        assert_eq!(f.lock_fields[0].line, 6);
    }

    #[test]
    fn named_guard_lives_until_drop_or_block_end() {
        let f = parse_one(
            REL,
            "struct S { queue: Mutex<u32> }\nimpl S {\n    fn go(&self) {\n        let q = lock_or_recover(&self.queue);\n        self.step();\n        drop(q);\n        self.after();\n    }\n}\n",
        );
        let events = &f.fns[0].events;
        let calls: Vec<(&str, &[String])> = events
            .iter()
            .filter_map(|e| match e {
                Event::Call(c) => Some((c.method.as_str(), c.held.as_slice())),
                _ => None,
            })
            .collect();
        assert_eq!(calls.len(), 2, "{events:?}");
        assert_eq!(calls[0].0, "step");
        assert_eq!(calls[0].1, ["server.queue"]);
        assert_eq!(calls[1].0, "after");
        assert!(calls[1].1.is_empty(), "released by drop: {events:?}");
    }

    #[test]
    fn temporary_guard_ends_at_statement() {
        let f = parse_one(
            REL,
            "struct S { queue: Mutex<u32> }\nimpl S {\n    fn go(&self) {\n        if lock_or_recover(&self.queue).is_empty() {\n            self.inside_if();\n        }\n        self.outside();\n    }\n}\n",
        );
        let calls: Vec<(&str, usize)> = f.fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call(c) => Some((c.method.as_str(), c.held.len())),
                _ => None,
            })
            .collect();
        // `is_empty` is on the guard (while held); the plain-if body and
        // the tail run guard-free.
        assert!(calls.contains(&("inside_if", 0)), "{calls:?}");
        assert!(calls.contains(&("outside", 0)), "{calls:?}");
    }

    #[test]
    fn chained_let_acquire_is_a_statement_temp() {
        // `let cached = lock_or_recover(&m).get(k);` binds the chain
        // result; the guard is a temporary dropped at the `;`, so calls
        // after the statement run guard-free.
        let f = parse_one(
            REL,
            "struct S { queue: Mutex<u32> }\nimpl S {\n    fn go(&self) {\n        let cached = lock_or_recover(&self.queue).get(0);\n        self.after(cached);\n    }\n}\n",
        );
        let calls: Vec<(&str, usize)> = f.fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call(c) => Some((c.method.as_str(), c.held.len())),
                _ => None,
            })
            .collect();
        assert!(calls.contains(&("after", 0)), "{calls:?}");
    }

    #[test]
    fn scrutinee_guard_lives_through_if_let_body() {
        let f = parse_one(
            REL,
            "struct S { queue: Mutex<u32> }\nimpl S {\n    fn go(&self) {\n        if let Some(v) = lock_or_recover(&self.queue).get(0) {\n            self.held_here();\n        }\n        self.free_here();\n    }\n}\n",
        );
        let calls: Vec<(&str, usize)> = f.fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call(c) => Some((c.method.as_str(), c.held.len())),
                _ => None,
            })
            .collect();
        assert!(calls.contains(&("held_here", 1)), "{calls:?}");
        assert!(calls.contains(&("free_here", 0)), "{calls:?}");
    }

    #[test]
    fn block_scoped_guard_released_at_close() {
        let f = parse_one(
            REL,
            "struct S { queue: Mutex<u32> }\nimpl S {\n    fn go(&self) {\n        let v = {\n            let q = lock_or_recover(&self.queue);\n            q.len()\n        };\n        self.work(v);\n    }\n}\n",
        );
        let calls: Vec<(&str, usize)> = f.fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call(c) => Some((c.method.as_str(), c.held.len())),
                _ => None,
            })
            .collect();
        assert!(calls.contains(&("work", 0)), "{calls:?}");
    }

    #[test]
    fn acquire_while_held_reports_held_set() {
        let f = parse_one(
            "crates/x/src/two.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn go(&self) {\n        let ga = lock_or_recover(&self.a);\n        let gb = lock_or_recover(&self.b);\n        drop(gb);\n        drop(ga);\n    }\n}\n",
        );
        let acquires: Vec<(&str, &[String])> = f.fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Acquire { class, held, .. } => Some((class.as_str(), held.as_slice())),
                _ => None,
            })
            .collect();
        assert_eq!(acquires[0], ("two.a", &[][..]));
        assert_eq!(acquires[1].0, "two.b");
        assert_eq!(acquires[1].1, ["two.a"]);
    }

    #[test]
    fn channel_send_recv_join_events() {
        let f = parse_one(
            "crates/x/src/ch.rs",
            "fn go() {\n    let (tx, rx) = mpsc::channel();\n    tx.send(1);\n    let _ = tx.send(2);\n    let v = rx.recv();\n    h.join();\n    let s = parts.join(\", \");\n    let _ = v;\n}\n",
        );
        let e = &f.fns[0].events;
        assert!(matches!(e[0], Event::ChannelNew { line: 2 }), "{e:?}");
        assert!(matches!(e[1], Event::Send { handled: false, .. }), "{e:?}");
        assert!(matches!(e[2], Event::Send { handled: true, .. }), "{e:?}");
        assert!(matches!(e[3], Event::Recv { .. }), "{e:?}");
        assert!(matches!(e[4], Event::Join { .. }), "{e:?}");
        // str::join (has args) is a plain call, not a thread join.
        assert!(
            !e[5..].iter().any(|ev| matches!(ev, Event::Join { .. })),
            "{e:?}"
        );
    }

    #[test]
    fn wait_or_recover_passes_guard() {
        let f = parse_one(
            REL,
            "struct S { queue: Mutex<u32>, wake: Condvar }\nimpl S {\n    fn go(&self) {\n        let mut q = lock_or_recover(&self.queue);\n        q = wait_or_recover(&self.wake, q);\n        drop(q);\n    }\n}\n",
        );
        let waits: Vec<_> = f.fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Wait { passed, held, .. } => Some((passed.clone(), held.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(waits.len(), 1, "{:?}", f.fns[0].events);
        assert_eq!(waits[0].0.as_deref(), Some("server.queue"));
        assert_eq!(waits[0].1, ["server.queue"]);
    }

    #[test]
    fn impl_context_and_call_kinds() {
        let f = parse_one(
            "crates/x/src/a.rs",
            "struct A { store: Arc<CubeStore> }\nimpl BlobStore for A {\n    fn put(&self) {\n        self.helper();\n        self.store.query();\n        Segment::decode();\n        free_fn();\n    }\n}\n",
        );
        let body = &f.fns[0];
        assert_eq!(body.impl_type.as_deref(), Some("A"));
        assert_eq!(body.trait_name.as_deref(), Some("BlobStore"));
        assert_eq!(f.trait_impls, vec![("BlobStore".into(), "A".into())]);
        let kinds: Vec<&CallKind> = body
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call(c) => Some(&c.kind),
                _ => None,
            })
            .collect();
        assert_eq!(kinds[0], &CallKind::SelfMethod);
        assert_eq!(kinds[1], &CallKind::FieldMethod("store".into()));
        assert_eq!(kinds[2], &CallKind::Qualified("Segment".into()));
        assert_eq!(kinds[3], &CallKind::Bare);
    }

    #[test]
    fn std_lock_unwrap_idiom_is_an_acquisition() {
        let f = parse_one(
            "crates/x/src/m.rs",
            "struct S { cell: Mutex<u32> }\nimpl S {\n    fn go(&self) {\n        let g = self.cell.lock().unwrap();\n        self.while_held();\n    }\n}\n",
        );
        let held: Vec<usize> = f.fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call(c) if c.method == "while_held" => Some(c.held.len()),
                _ => None,
            })
            .collect();
        assert_eq!(held, [1], "{:?}", f.fns[0].events);
    }

    #[test]
    fn io_read_write_calls_are_not_acquisitions() {
        let f = parse_one(
            "crates/x/src/m.rs",
            "fn go(mut w: File) {\n    w.write(b1);\n    w.read(b2);\n}\n",
        );
        assert!(
            !f.fns[0]
                .events
                .iter()
                .any(|e| matches!(e, Event::Acquire { .. })),
            "{:?}",
            f.fns[0].events
        );
    }

    #[test]
    fn fallback_class_for_non_field_locks() {
        let f = parse_one(
            "crates/mapreduce/src/engine.rs",
            "fn go(slot: &Mutex<u32>) {\n    *lock_or_recover(slot) = 1;\n}\n",
        );
        let acq: Vec<&str> = f.fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Acquire { class, .. } => Some(class.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(acq, ["engine.slot"]);
    }

    #[test]
    fn lib_rs_stem_is_the_crate_name() {
        let f = parse_one(
            "crates/obs/src/lib.rs",
            "struct O { state: Mutex<u32> }\nimpl O {\n    fn go(&self) { let _g = lock_or_recover(&self.state); }\n}\n",
        );
        assert_eq!(f.stem, "obs");
        assert_eq!(f.krate, "obs");
    }

    #[test]
    fn underscore_let_is_a_temporary() {
        let f = parse_one(
            REL,
            "struct S { queue: Mutex<u32> }\nimpl S {\n    fn go(&self) {\n        let _ = lock_or_recover(&self.queue);\n        self.after();\n    }\n}\n",
        );
        let calls: Vec<usize> = f.fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call(c) if c.method == "after" => Some(c.held.len()),
                _ => None,
            })
            .collect();
        assert_eq!(calls, [0], "{:?}", f.fns[0].events);
    }
}
