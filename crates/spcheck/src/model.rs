//! Pass 2 of the concurrency analyzer: link per-file parse results into
//! a workspace model.
//!
//! The model holds:
//!
//! * every function with its event stream and a transitive summary —
//!   `may_acquire` (lock classes the function or anything it calls can
//!   take) and `may_io` (whether it can block on a channel, a
//!   `BlobStore` call, a condvar wait, or a thread join);
//! * the set of named **lock classes** (`<stem>.<field>`) with their
//!   declaration sites;
//! * the **lock-order graph**: an edge `A -> B` means some path
//!   acquires `B` while holding `A`, either directly or through a call
//!   into a function whose summary says it may acquire `B`. A cycle in
//!   this graph is a potential deadlock (rule R6).
//!
//! Call resolution is lexical and deliberately conservative: `self.m()`
//! resolves through the enclosing impl type, `x.m()` through the
//! declared type of the nearest field/parameter ident, `T::m()` through
//! the path qualifier, and bare `f()` only when exactly one free
//! function of that name exists in the workspace. Unresolvable calls
//! (call-result chains, std methods) contribute nothing — the analyzer
//! prefers missing an edge on foreign code to inventing one.
//!
//! Everything is keyed through `BTreeMap`/`BTreeSet`, so graph dumps and
//! findings are deterministic.

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::{CallKind, CallSite, Event, LockKind, ParsedFile, BLOB_METHODS, BLOB_TRAIT};

/// Where a lock class was declared.
#[derive(Debug, Clone)]
pub struct ClassDecl {
    pub rel: String,
    pub line: usize,
    /// `None` for fallback classes (locals/params, not struct fields).
    pub kind: Option<LockKind>,
    pub krate: String,
}

/// One function in the workspace graph.
#[derive(Debug)]
pub struct FnNode {
    pub rel: String,
    pub krate: String,
    pub name: String,
    pub impl_type: Option<String>,
    pub trait_name: Option<String>,
    pub line: usize,
    pub events: Vec<Event>,
    /// Transitive closure: lock classes this fn (or any callee) may take.
    pub may_acquire: BTreeSet<String>,
    /// Transitive closure: may this fn block on IO/channel/join/wait?
    pub may_io: bool,
}

impl FnNode {
    /// Display name: `Type::method` or a bare `method`.
    pub fn label(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Source location of the first witness for a lock-order edge.
#[derive(Debug, Clone)]
pub struct EdgeInfo {
    pub rel: String,
    pub line: usize,
    /// `Some(label)` when the edge comes from a call into `label`
    /// rather than a direct acquisition.
    pub via: Option<String>,
}

/// Result of resolving one call site.
#[derive(Debug, Default)]
pub struct Resolved {
    /// Indices into [`Model::fns`] of possible targets (all impls for a
    /// trait-object receiver).
    pub targets: Vec<usize>,
    /// The call is a blob-IO method on a `BlobStore`-typed receiver.
    pub blob: bool,
}

/// The linked workspace model.
#[derive(Debug, Default)]
pub struct Model {
    pub fns: Vec<FnNode>,
    pub class_decls: BTreeMap<String, ClassDecl>,
    /// `A -> B` edges of the lock-order graph with their first witness.
    pub edges: BTreeMap<(String, String), EdgeInfo>,
    by_type_method: BTreeMap<(String, String), Vec<usize>>,
    by_bare: BTreeMap<String, Vec<usize>>,
    trait_impls: BTreeMap<String, Vec<String>>,
    file_types: BTreeMap<String, BTreeMap<String, String>>,
}

impl Model {
    /// Resolve a call site made from `fns[caller]`.
    pub fn resolve_call(&self, caller: usize, site: &CallSite) -> Resolved {
        let mut out = Resolved::default();
        match &site.kind {
            CallKind::Qualified(ty) => {
                let ty = if ty == "Self" {
                    match &self.fns[caller].impl_type {
                        Some(t) => t.clone(),
                        None => return out,
                    }
                } else {
                    ty.clone()
                };
                self.push_type_targets(&ty, &site.method, &mut out);
            }
            CallKind::SelfMethod => {
                if let Some(ty) = self.fns[caller].impl_type.clone() {
                    self.push_type_targets(&ty, &site.method, &mut out);
                }
            }
            CallKind::FieldMethod(field) => {
                let ty = self
                    .file_types
                    .get(&self.fns[caller].rel)
                    .and_then(|m| m.get(field))
                    .cloned();
                let Some(ty) = ty else {
                    return out;
                };
                if ty == BLOB_TRAIT && BLOB_METHODS.contains(&site.method.as_str()) {
                    out.blob = true;
                }
                self.push_type_targets(&ty, &site.method, &mut out);
            }
            CallKind::Bare => {
                if let Some(idxs) = self.by_bare.get(&site.method) {
                    if idxs.len() == 1 {
                        out.targets.push(idxs[0]);
                    }
                }
            }
            CallKind::UnknownRecv => {}
        }
        out
    }

    /// Targets for `ty::method`; a trait name fans out to every impl.
    fn push_type_targets(&self, ty: &str, method: &str, out: &mut Resolved) {
        if let Some(impls) = self.trait_impls.get(ty) {
            for t in impls {
                if let Some(idxs) = self.by_type_method.get(&(t.clone(), method.to_string())) {
                    out.targets.extend(idxs.iter().copied());
                }
            }
            // Also a direct inherent impl on the trait-named type, if any.
        }
        if let Some(idxs) = self
            .by_type_method
            .get(&(ty.to_string(), method.to_string()))
        {
            out.targets.extend(idxs.iter().copied());
        }
        out.targets.sort_unstable();
        out.targets.dedup();
    }

    /// The crate a class was declared in (fallback classes belong to the
    /// crate of the file that acquired them).
    pub fn class_krate(&self, class: &str) -> Option<&str> {
        self.class_decls.get(class).map(|d| d.krate.as_str())
    }

    /// All distinct cycles in the lock-order graph, as canonicalised
    /// node lists (`[a, b]` means `a -> b -> a`). Deterministic.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (a, b) in self.edges.keys() {
            adj.entry(a.as_str()).or_default().push(b.as_str());
        }
        for succ in adj.values_mut() {
            succ.sort_unstable();
            succ.dedup();
        }
        let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
        let mut out = Vec::new();
        for (a, b) in self.edges.keys() {
            // A cycle through edge a->b exists iff b reaches a.
            let Some(path) = bfs_path(&adj, b, a) else {
                continue;
            };
            // path = [b, .., a]; the cycle's node list starts at a.
            let mut cycle = vec![a.clone()];
            cycle.extend(path[..path.len() - 1].iter().map(|s| s.to_string()));
            let canon = canonical_rotation(&cycle);
            if seen.insert(canon.clone()) {
                out.push(canon);
            }
        }
        out
    }

    /// Human-readable dump: classes, edges, verdict.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("lock classes:\n");
        if self.class_decls.is_empty() {
            out.push_str("  (none)\n");
        }
        for (class, decl) in &self.class_decls {
            let kind = decl.kind.map(|k| k.name()).unwrap_or("local");
            out.push_str(&format!(
                "  {class:<28} {kind:<8} {}:{}\n",
                decl.rel, decl.line
            ));
        }
        out.push_str("\nlock-order edges (held -> acquired):\n");
        if self.edges.is_empty() {
            out.push_str("  (none)\n");
        }
        for ((a, b), info) in &self.edges {
            let via = match &info.via {
                Some(v) => format!(" via {v}"),
                None => String::new(),
            };
            out.push_str(&format!(
                "  {a} -> {b}  ({}:{}{via})\n",
                info.rel, info.line
            ));
        }
        let cycles = self.cycles();
        if cycles.is_empty() {
            out.push_str("\nverdict: acyclic\n");
        } else {
            out.push_str(&format!("\nverdict: {} cycle(s)\n", cycles.len()));
            for c in &cycles {
                out.push_str(&format!("  {}\n", witness(self, c)));
            }
        }
        out
    }

    /// Graphviz dump, `BTreeMap`-ordered so byte-identical across runs.
    pub fn render_dot(&self) -> String {
        let mut out = String::from("digraph lockgraph {\n");
        out.push_str("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n");
        for (class, decl) in &self.class_decls {
            let kind = decl.kind.map(|k| k.name()).unwrap_or("local");
            out.push_str(&format!(
                "  \"{class}\" [label=\"{class}\\n{kind} {}:{}\"];\n",
                decl.rel, decl.line
            ));
        }
        for ((a, b), info) in &self.edges {
            out.push_str(&format!(
                "  \"{a}\" -> \"{b}\" [label=\"{}:{}\"];\n",
                info.rel, info.line
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// Witness string for a cycle: `a -> b -> a (a -> b at f:12, b -> a at g:34)`.
pub fn witness(model: &Model, cycle: &[String]) -> String {
    let mut ring = String::new();
    for c in cycle {
        ring.push_str(c);
        ring.push_str(" -> ");
    }
    ring.push_str(&cycle[0]);
    let mut sites = Vec::new();
    for i in 0..cycle.len() {
        let a = &cycle[i];
        let b = &cycle[(i + 1) % cycle.len()];
        if let Some(info) = model.edges.get(&(a.clone(), b.clone())) {
            sites.push(format!("{a} -> {b} at {}:{}", info.rel, info.line));
        }
    }
    format!("{ring} ({})", sites.join(", "))
}

/// Shortest path `from -> .. -> to` over sorted adjacency (BFS), or
/// `None`. `from == to` returns `[from]` only via a real self-edge.
fn bfs_path<'a>(
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    while let Some(n) = queue.pop_front() {
        for &succ in adj.get(n).into_iter().flatten() {
            if succ == from || prev.contains_key(succ) {
                continue;
            }
            prev.insert(succ, n);
            if succ == to {
                let mut path = vec![succ];
                let mut cur = succ;
                while cur != from {
                    cur = prev[cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(succ);
        }
    }
    None
}

/// Rotate the cycle so its lexicographically-smallest node comes first.
fn canonical_rotation(cycle: &[String]) -> Vec<String> {
    let min = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.as_str())
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = Vec::with_capacity(cycle.len());
    out.extend(cycle[min..].iter().cloned());
    out.extend(cycle[..min].iter().cloned());
    out
}

/// Link parsed files into the workspace model and compute the
/// fixed-point summaries and the lock-order graph.
pub fn build(files: Vec<ParsedFile>) -> Model {
    let mut model = Model::default();

    for pf in &files {
        for lf in &pf.lock_fields {
            let class = format!("{}.{}", pf.stem, lf.field);
            model.class_decls.entry(class).or_insert(ClassDecl {
                rel: pf.rel.clone(),
                line: lf.line,
                kind: Some(lf.kind),
                krate: pf.krate.clone(),
            });
        }
        for (tr, ty) in &pf.trait_impls {
            let impls = model.trait_impls.entry(tr.clone()).or_default();
            if !impls.contains(ty) {
                impls.push(ty.clone());
            }
        }
        model
            .file_types
            .insert(pf.rel.clone(), pf.ident_types.clone());
    }
    for impls in model.trait_impls.values_mut() {
        impls.sort_unstable();
    }

    for pf in files {
        for f in pf.fns {
            let idx = model.fns.len();
            if let Some(ty) = &f.impl_type {
                model
                    .by_type_method
                    .entry((ty.clone(), f.name.clone()))
                    .or_default()
                    .push(idx);
            } else {
                model.by_bare.entry(f.name.clone()).or_default().push(idx);
            }
            model.fns.push(FnNode {
                rel: pf.rel.clone(),
                krate: pf.krate.clone(),
                name: f.name,
                impl_type: f.impl_type,
                trait_name: f.trait_name,
                line: f.line,
                events: f.events,
                may_acquire: BTreeSet::new(),
                may_io: false,
            });
        }
    }

    // Register fallback classes (locals/params) at first acquisition.
    for i in 0..model.fns.len() {
        let (rel, krate) = (model.fns[i].rel.clone(), model.fns[i].krate.clone());
        let acquires: Vec<(String, usize)> = model.fns[i]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Acquire { class, line, .. } => Some((class.clone(), *line)),
                _ => None,
            })
            .collect();
        for (class, line) in acquires {
            model.class_decls.entry(class).or_insert(ClassDecl {
                rel: rel.clone(),
                line,
                kind: None,
                krate: krate.clone(),
            });
        }
    }

    // Direct summaries.
    for i in 0..model.fns.len() {
        let mut acq = BTreeSet::new();
        let mut io = false;
        let resolved_blob: Vec<bool> = model.fns[i]
            .events
            .iter()
            .map(|e| match e {
                Event::Call(c) => model.resolve_call(i, c).blob,
                _ => false,
            })
            .collect();
        for (e, blob) in model.fns[i].events.iter().zip(&resolved_blob) {
            match e {
                Event::Acquire { class, .. } => {
                    acq.insert(class.clone());
                }
                Event::Send { .. }
                | Event::Recv { .. }
                | Event::Join { .. }
                | Event::Wait { .. } => io = true,
                Event::Call(_) if *blob => io = true,
                _ => {}
            }
        }
        model.fns[i].may_acquire = acq;
        model.fns[i].may_io = io;
    }

    // Fixed point over the call graph.
    loop {
        let mut changed = false;
        for i in 0..model.fns.len() {
            let calls: Vec<CallSite> = model.fns[i]
                .events
                .iter()
                .filter_map(|e| match e {
                    Event::Call(c) => Some(c.clone()),
                    _ => None,
                })
                .collect();
            for c in calls {
                let resolved = model.resolve_call(i, &c);
                for t in resolved.targets {
                    if t == i {
                        continue;
                    }
                    let extra: Vec<String> = model.fns[t]
                        .may_acquire
                        .difference(&model.fns[i].may_acquire)
                        .cloned()
                        .collect();
                    if !extra.is_empty() {
                        model.fns[i].may_acquire.extend(extra);
                        changed = true;
                    }
                    if model.fns[t].may_io && !model.fns[i].may_io {
                        model.fns[i].may_io = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Lock-order edges.
    for i in 0..model.fns.len() {
        let rel = model.fns[i].rel.clone();
        let events = model.fns[i].events.clone();
        for e in &events {
            match e {
                Event::Acquire { class, line, held } => {
                    for h in held {
                        model
                            .edges
                            .entry((h.clone(), class.clone()))
                            .or_insert(EdgeInfo {
                                rel: rel.clone(),
                                line: *line,
                                via: None,
                            });
                    }
                }
                Event::Call(c) if !c.held.is_empty() => {
                    let resolved = model.resolve_call(i, c);
                    for t in &resolved.targets {
                        let label = model.fns[*t].label();
                        let callee_acq = model.fns[*t].may_acquire.clone();
                        for h in &c.held {
                            for b in &callee_acq {
                                model
                                    .edges
                                    .entry((h.clone(), b.clone()))
                                    .or_insert(EdgeInfo {
                                        rel: rel.clone(),
                                        line: c.line,
                                        via: Some(label.clone()),
                                    });
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_workspace;

    fn build_src(files: &[(&str, &str)]) -> Model {
        let parsed: Vec<(String, String)> = files
            .iter()
            .map(|(rel, src)| {
                let mut s = crate::lexer::scrub(src);
                crate::lexer::blank_test_regions(&mut s.text);
                (rel.to_string(), s.text)
            })
            .collect();
        build(parse_workspace(&parsed))
    }

    #[test]
    fn ab_ba_cycle_is_detected_with_witness() {
        let m = build_src(&[(
            "crates/x/src/pair.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn ab(&self) {\n        let ga = lock_or_recover(&self.a);\n        let gb = lock_or_recover(&self.b);\n        drop(gb);\n        drop(ga);\n    }\n    fn ba(&self) {\n        let gb = lock_or_recover(&self.b);\n        let ga = lock_or_recover(&self.a);\n        drop(ga);\n        drop(gb);\n    }\n}\n",
        )]);
        assert!(m.edges.contains_key(&("pair.a".into(), "pair.b".into())));
        assert!(m.edges.contains_key(&("pair.b".into(), "pair.a".into())));
        let cycles = m.cycles();
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert_eq!(cycles[0], ["pair.a", "pair.b"]);
        let w = witness(&m, &cycles[0]);
        assert!(w.contains("pair.a -> pair.b -> pair.a"), "{w}");
        assert!(w.contains("pair.rs:5"), "{w}");
        assert!(w.contains("pair.rs:11"), "{w}");
    }

    #[test]
    fn consistent_order_is_acyclic() {
        let m = build_src(&[(
            "crates/x/src/pair.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn one(&self) {\n        let ga = lock_or_recover(&self.a);\n        let gb = lock_or_recover(&self.b);\n        drop(gb);\n        drop(ga);\n    }\n    fn two(&self) {\n        let ga = lock_or_recover(&self.a);\n        let gb = lock_or_recover(&self.b);\n        drop(gb);\n        drop(ga);\n    }\n}\n",
        )]);
        assert_eq!(m.edges.len(), 1);
        assert!(m.cycles().is_empty());
    }

    #[test]
    fn cross_function_edge_via_callee_summary() {
        let m = build_src(&[(
            "crates/x/src/two.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn outer(&self) {\n        let ga = lock_or_recover(&self.a);\n        self.inner();\n        drop(ga);\n    }\n    fn inner(&self) {\n        let _gb = lock_or_recover(&self.b);\n    }\n}\n",
        )]);
        let info = m
            .edges
            .get(&("two.a".into(), "two.b".into()))
            .expect("edge via call");
        assert_eq!(info.via.as_deref(), Some("S::inner"));
        assert!(m.cycles().is_empty());
    }

    #[test]
    fn reentrant_acquire_is_a_self_loop_cycle() {
        let m = build_src(&[(
            "crates/x/src/re.rs",
            "struct S { a: Mutex<u32> }\nimpl S {\n    fn outer(&self) {\n        let ga = lock_or_recover(&self.a);\n        self.inner();\n        drop(ga);\n    }\n    fn inner(&self) {\n        let _ga = lock_or_recover(&self.a);\n    }\n}\n",
        )]);
        let cycles = m.cycles();
        assert_eq!(cycles, vec![vec!["re.a".to_string()]]);
    }

    #[test]
    fn may_io_propagates_through_calls() {
        let m = build_src(&[(
            "crates/x/src/io.rs",
            "struct S { blobs: Arc<dyn BlobStore> }\nimpl S {\n    fn outer(&self) {\n        self.middle();\n    }\n    fn middle(&self) {\n        self.leaf();\n    }\n    fn leaf(&self) {\n        let _ = self.blobs.get(p);\n    }\n}\n",
        )]);
        for f in &m.fns {
            assert!(f.may_io, "{} should be may_io", f.label());
        }
    }

    #[test]
    fn trait_object_call_unions_all_impls() {
        let m = build_src(&[(
            "crates/x/src/tr.rs",
            "struct Faulty { state: Mutex<u32> }\nimpl BlobStore for Faulty {\n    fn get(&self) {\n        let _g = lock_or_recover(&self.state);\n    }\n}\nstruct User { blobs: Arc<dyn BlobStore> }\nimpl User {\n    fn read(&self) {\n        self.blobs.get();\n    }\n}\n",
        )]);
        let user = m.fns.iter().find(|f| f.name == "read").expect("User::read");
        assert!(
            user.may_acquire.contains("tr.state"),
            "{:?}",
            user.may_acquire
        );
        assert!(user.may_io, "blob call is IO");
    }

    #[test]
    fn render_is_deterministic_and_names_everything() {
        let src = "struct S { a: Mutex<u32>, b: RwLock<u32> }\nimpl S {\n    fn go(&self) {\n        let ga = lock_or_recover(&self.a);\n        let _gb = self.b.read();\n        drop(ga);\n    }\n}\n";
        let m1 = build_src(&[("crates/x/src/r.rs", src)]);
        let m2 = build_src(&[("crates/x/src/r.rs", src)]);
        assert_eq!(m1.render_text(), m2.render_text());
        assert_eq!(m1.render_dot(), m2.render_dot());
        let text = m1.render_text();
        assert!(text.contains("r.a"), "{text}");
        assert!(text.contains("r.b"), "{text}");
        assert!(text.contains("Mutex"), "{text}");
        assert!(text.contains("RwLock"), "{text}");
        assert!(text.contains("r.a -> r.b"), "{text}");
        assert!(text.contains("verdict: acyclic"), "{text}");
        let dot = m1.render_dot();
        assert!(dot.starts_with("digraph lockgraph {"), "{dot}");
        assert!(dot.contains("\"r.a\" -> \"r.b\""), "{dot}");
    }

    #[test]
    fn bare_calls_resolve_only_when_unique() {
        let m = build_src(&[
            (
                "crates/x/src/a.rs",
                "struct S { a: Mutex<u32> }\nimpl S {\n    fn go(&self) {\n        let g = lock_or_recover(&self.a);\n        helper();\n        drop(g);\n    }\n}\nfn helper() {\n    other();\n}\n",
            ),
            (
                "crates/y/src/b.rs",
                "struct T { b: Mutex<u32> }\nfn other() {}\nimpl T {\n    fn tb(&self) { let _ = lock_or_recover(&self.b); }\n}\n",
            ),
        ]);
        // helper is unique -> resolved; it calls `other` (unique) which
        // takes nothing, so no edge beyond a.a's own acquisitions.
        assert!(m.cycles().is_empty());
        let go = m.fns.iter().find(|f| f.name == "go").expect("go");
        assert!(go.may_acquire.contains("a.a"));
        assert!(!go.may_acquire.contains("b.b"));
    }
}
