//! Findings and their rendering (human text and machine JSON).

use std::fmt;

/// One rule violation at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line (0 for workspace-level findings with no single site).
    pub line: usize,
    /// Rule name (`no_panic`, `single_source_format`, `determinism`,
    /// `error_hygiene`, `bad_suppression`, `lock_order`,
    /// `hold_across_io`, `channel_hygiene`, `guard_scope`).
    pub rule: String,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl Finding {
    pub fn new(file: &str, line: usize, rule: &str, message: String) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Render the findings as a stable, sorted text report.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str("spcheck: clean\n");
    } else {
        out.push_str(&format!(
            "spcheck: {} finding{}\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the findings as a JSON document:
/// `{"findings": [{"file", "line", "rule", "message"}...], "count": N}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.file),
            f.line,
            json_escape(&f.rule),
            json_escape(&f.message)
        ));
    }
    out.push_str(&format!("],\"count\":{}}}\n", findings.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_report_lists_findings_and_count() {
        let fs = vec![
            Finding::new("a.rs", 3, "no_panic", "bad".into()),
            Finding::new("b.rs", 9, "determinism", "worse".into()),
        ];
        let text = render_text(&fs);
        assert!(text.contains("a.rs:3: [no_panic] bad"));
        assert!(text.contains("2 findings"));
        assert!(render_text(&[]).contains("clean"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let fs = vec![Finding::new(
            "a.rs",
            1,
            "no_panic",
            "needs \"quotes\" and\nnewline".into(),
        )];
        let json = render_json(&fs);
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\\n"));
        assert!(json.ends_with("\"count\":1}\n"));
        assert_eq!(render_json(&[]), "{\"findings\":[],\"count\":0}\n");
    }
}
