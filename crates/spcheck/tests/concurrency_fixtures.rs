//! Integration fixtures for the concurrency rules (R6–R9): planted
//! violations the analyzer must catch, clean twins it must not flag, and
//! a snapshot check that the real workspace's lock-order graph is
//! acyclic and renders deterministically.

use std::fs;
use std::path::{Path, PathBuf};

/// Throwaway tree under the OS temp dir, keyed by tag + pid so parallel
/// test runs never collide.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let root = std::env::temp_dir().join(format!("spcheck-it-{}-{}", tag, std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create fixture root");
        Fixture { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("create fixture dirs");
        }
        fs::write(path, content).expect("write fixture file");
    }

    /// Satisfy R2 (single_source_format) so its workspace findings don't
    /// drown out what each test is about.
    fn with_format_consts(self) -> Fixture {
        self.write(
            "crates/common/src/codec.rs",
            "pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;\n\
             pub const FNV_PRIME: u64 = 0x100_0000_01b3;\n",
        );
        self.write(
            "crates/core/src/sketch/mod.rs",
            "pub const MAGIC: &[u8; 5] = b\"SPSK1\";\n",
        );
        self.write(
            "crates/cubestore/src/segment.rs",
            "pub const MAGIC: &[u8; 5] = b\"CSEG1\";\n",
        );
        self.write(
            "crates/cubestore/src/manifest.rs",
            "pub const MAGIC: &[u8; 5] = b\"CMAN1\";\n",
        );
        self.write(
            "crates/cubestore/src/delta.rs",
            "pub const MAGIC: &[u8; 5] = b\"DSEG1\";\n",
        );
        self
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn rules_of(findings: &[spcheck::report::Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn ab_ba_deadlock_fixture_is_caught_with_witness() {
    let fx = Fixture::new("abba").with_format_consts();
    fx.write(
        "crates/mapreduce/src/engine.rs",
        "pub struct Pair { a: Mutex<u32>, b: Mutex<u32> }\n\
         impl Pair {\n\
         \x20   pub fn forward(&self) -> u32 {\n\
         \x20       let ga = lock_or_recover(&self.a);\n\
         \x20       let gb = lock_or_recover(&self.b);\n\
         \x20       *ga + *gb\n\
         \x20   }\n\
         \x20   pub fn backward(&self) -> u32 {\n\
         \x20       let gb = lock_or_recover(&self.b);\n\
         \x20       let ga = lock_or_recover(&self.a);\n\
         \x20       *ga + *gb\n\
         \x20   }\n\
         }\n",
    );
    let findings = spcheck::run_check(&fx.root).expect("run");
    let cycles: Vec<_> = findings.iter().filter(|f| f.rule == "lock_order").collect();
    assert_eq!(cycles.len(), 1, "{findings:?}");
    let msg = &cycles[0].message;
    // The witness names both classes and each edge's source site.
    assert!(msg.contains("engine.a -> engine.b"), "{msg}");
    assert!(msg.contains("engine.b -> engine.a"), "{msg}");
    assert!(msg.contains("crates/mapreduce/src/engine.rs:"), "{msg}");
}

#[test]
fn consistently_ordered_twin_is_clean() {
    let fx = Fixture::new("ordered").with_format_consts();
    fx.write(
        "crates/mapreduce/src/engine.rs",
        "pub struct Pair { a: Mutex<u32>, b: Mutex<u32> }\n\
         impl Pair {\n\
         \x20   pub fn forward(&self) -> u32 {\n\
         \x20       let ga = lock_or_recover(&self.a);\n\
         \x20       let gb = lock_or_recover(&self.b);\n\
         \x20       *ga + *gb\n\
         \x20   }\n\
         \x20   pub fn also_forward(&self) -> u32 {\n\
         \x20       let ga = lock_or_recover(&self.a);\n\
         \x20       let gb = lock_or_recover(&self.b);\n\
         \x20       *gb + *ga\n\
         \x20   }\n\
         }\n",
    );
    let findings = spcheck::run_check(&fx.root).expect("run");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn cross_file_cycle_is_caught() {
    // The AB edge and the BA edge live in different crates; only the
    // workspace-level graph can see the cycle.
    let fx = Fixture::new("crossfile").with_format_consts();
    fx.write(
        "crates/mapreduce/src/engine.rs",
        "pub struct A { first: Mutex<u32> }\n\
         impl A {\n\
         \x20   pub fn go(&self, d: &spcube_mapreduce::D) -> u32 {\n\
         \x20       let g = lock_or_recover(&self.first);\n\
         \x20       d.touch();\n\
         \x20       *g\n\
         \x20   }\n\
         }\n",
    );
    fx.write(
        "crates/mapreduce/src/dfs.rs",
        "pub struct D { second: Mutex<u32>, up: Arc<A> }\n\
         impl D {\n\
         \x20   pub fn touch(&self) -> u32 {\n\
         \x20       *lock_or_recover(&self.second)\n\
         \x20   }\n\
         \x20   pub fn reverse(&self) -> u32 {\n\
         \x20       let g = lock_or_recover(&self.second);\n\
         \x20       let h = lock_or_recover(&self.up.first);\n\
         \x20       *g + *h\n\
         \x20   }\n\
         }\n",
    );
    let findings = spcheck::run_check(&fx.root).expect("run");
    assert!(rules_of(&findings).contains(&"lock_order"), "{findings:?}");
}

#[test]
fn guard_across_blob_put_is_caught() {
    let fx = Fixture::new("blobput").with_format_consts();
    fx.write(
        "crates/cubestore/src/store.rs",
        "pub struct S { state: Mutex<u32>, blobs: Arc<dyn BlobStore> }\n\
         impl S {\n\
         \x20   pub fn persist(&self, path: &str, data: Vec<u8>) {\n\
         \x20       let g = lock_or_recover(&self.state);\n\
         \x20       let _ = self.blobs.put(path, data);\n\
         \x20       let _ = *g;\n\
         \x20   }\n\
         }\n",
    );
    let findings = spcheck::run_check(&fx.root).expect("run");
    let io: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "hold_across_io")
        .collect();
    assert_eq!(io.len(), 1, "{findings:?}");
    assert!(
        io[0].message.contains("BlobStore::put"),
        "{}",
        io[0].message
    );
    assert!(io[0].message.contains("store.state"), "{}", io[0].message);
}

#[test]
fn scoped_guard_before_put_twin_is_clean() {
    let fx = Fixture::new("blobscoped").with_format_consts();
    fx.write(
        "crates/cubestore/src/store.rs",
        "pub struct S { state: Mutex<u32>, blobs: Arc<dyn BlobStore> }\n\
         impl S {\n\
         \x20   pub fn persist(&self, path: &str, data: Vec<u8>) {\n\
         \x20       let g = lock_or_recover(&self.state);\n\
         \x20       let _ = *g;\n\
         \x20       drop(g);\n\
         \x20       let _ = self.blobs.put(path, data);\n\
         \x20   }\n\
         }\n",
    );
    let findings = spcheck::run_check(&fx.root).expect("run");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unbounded_channel_outside_blessed_modules_is_caught() {
    let fx = Fixture::new("chan").with_format_consts();
    fx.write(
        "crates/mapreduce/src/engine.rs",
        "pub fn fan_out() -> u32 {\n\
         \x20   let (tx, rx) = mpsc::channel();\n\
         \x20   let _ = tx.send(1u32);\n\
         \x20   rx.recv().unwrap_or(0)\n\
         }\n",
    );
    let findings = spcheck::run_check(&fx.root).expect("run");
    let chans: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "channel_hygiene")
        .collect();
    assert_eq!(chans.len(), 1, "{findings:?}");
    assert!(
        chans[0].message.contains("mpsc::channel"),
        "{}",
        chans[0].message
    );
}

#[test]
fn channel_in_blessed_server_module_is_clean() {
    let fx = Fixture::new("chanblessed").with_format_consts();
    fx.write(
        "crates/cubestore/src/server.rs",
        "pub fn fan_out() -> u32 {\n\
         \x20   let (tx, rx) = mpsc::channel();\n\
         \x20   let _ = tx.send(1u32);\n\
         \x20   rx.recv().unwrap_or(0)\n\
         }\n",
    );
    let findings = spcheck::run_check(&fx.root).expect("run");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn dropped_send_result_is_caught_and_let_underscore_twin_is_clean() {
    let fx = Fixture::new("sendres").with_format_consts();
    fx.write(
        "crates/cubestore/src/server.rs",
        "pub fn reply() {\n\
         \x20   let (tx, _rx) = mpsc::channel();\n\
         \x20   tx.send(1u32);\n\
         }\n",
    );
    let findings = spcheck::run_check(&fx.root).expect("run");
    let sends: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "channel_hygiene")
        .collect();
    assert_eq!(sends.len(), 1, "{findings:?}");
    assert!(
        sends[0].message.contains("send result"),
        "{}",
        sends[0].message
    );

    let fx2 = Fixture::new("sendres-ok").with_format_consts();
    fx2.write(
        "crates/cubestore/src/server.rs",
        "pub fn reply() {\n\
         \x20   let (tx, _rx) = mpsc::channel();\n\
         \x20   let _ = tx.send(1u32);\n\
         }\n",
    );
    let findings = spcheck::run_check(&fx2.root).expect("run");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn suppression_silences_concurrency_rule_with_reason() {
    let fx = Fixture::new("allowconc").with_format_consts();
    fx.write(
        "crates/mapreduce/src/engine.rs",
        "pub fn fan_out() -> u32 {\n\
         \x20   // spcheck:allow(channel_hygiene): bounded by caller contract\n\
         \x20   let (tx, rx) = mpsc::channel();\n\
         \x20   let _ = tx.send(1u32);\n\
         \x20   rx.recv().unwrap_or(0)\n\
         }\n",
    );
    let findings = spcheck::run_check(&fx.root).expect("run");
    assert!(findings.is_empty(), "{findings:?}");
}

/// The real workspace must stay deadlock-free by construction: the
/// lock-order graph the analyzer extracts from this very repository has
/// to be acyclic, and its rendering deterministic run-to-run.
#[test]
fn real_workspace_lockgraph_is_acyclic_and_deterministic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let a = spcheck::run_full(&root).expect("analyze workspace");
    assert!(
        a.model.cycles().is_empty(),
        "lock-order cycle in the real workspace:\n{}",
        a.model.render_text()
    );
    let text = a.model.render_text();
    assert!(text.contains("verdict: acyclic"), "{text}");
    // Known lock classes must be present and named.
    for class in ["server.queue", "dfs.inner", "store.cache", "trace.state"] {
        assert!(text.contains(class), "missing class {class} in:\n{text}");
    }
    // Deterministic: a second full analysis renders byte-identically.
    let b = spcheck::run_full(&root).expect("analyze workspace again");
    assert_eq!(text, b.model.render_text());
    assert_eq!(a.model.render_dot(), b.model.render_dot());
}
