//! Traffic forecasting (the Section 5.2 quantities, computable up front).
//!
//! Given a relation and an SP-Sketch, the cube round's shuffle is fully
//! determined before it runs: each tuple's anchors follow from the sketch's
//! skew sets alone, and the skew partials are one record per (mapper,
//! locally-seen skewed group). [`forecast_cube_round`] replays the mapper
//! walk and predicts the round's record and byte counts *exactly* (for
//! fixed-size aggregate states) — the planning counterpart of Theorem 5.3
//! and Propositions 5.2/5.5: on benign data the forecast stays near `d·n`
//! records, on adversarial data it exposes the exponential blow-up before
//! any shuffle is paid.

use std::collections::HashSet;

use spcube_agg::AggSpec;
use spcube_common::{Group, Relation};
use spcube_lattice::{BfsOrder, TupleLattice};

use crate::sketch::SpSketch;

/// Predicted cube-round shuffle volumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficForecast {
    /// Tuples shipped to range reducers (one record per anchor per tuple).
    pub anchor_records: u64,
    /// Wire bytes of those records (group key + full tuple).
    pub anchor_bytes: u64,
    /// Skew partial aggregates shipped to reducer 0 (one per mapper per
    /// locally seen skewed group).
    pub partial_records: u64,
    /// Wire bytes of those partials (group key + state + count), assuming
    /// the fixed-size state of `agg` (exact for distributive/algebraic
    /// functions; a lower bound for set-valued holistic states).
    pub partial_bytes: u64,
}

impl TrafficForecast {
    /// Total predicted intermediate records.
    pub fn records(&self) -> u64 {
        self.anchor_records + self.partial_records
    }

    /// Total predicted intermediate bytes.
    pub fn bytes(&self) -> u64 {
        self.anchor_bytes + self.partial_bytes
    }

    /// Average anchors per tuple — the per-tuple emission factor bounded by
    /// `d` on skewness-benign data (Prop. 5.5) and exponential on the
    /// Theorem 5.3 construction.
    pub fn anchors_per_tuple(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.anchor_records as f64 / n as f64
        }
    }
}

/// Predict the cube round's shuffle for `rel` under `sketch`, with the
/// relation split evenly across `machines` mappers (the engine's split
/// rule). Matches the executed round's `map_output_records` /
/// `map_output_bytes` exactly for fixed-size aggregate states.
pub fn forecast_cube_round(
    rel: &Relation,
    sketch: &SpSketch,
    machines: usize,
    agg: AggSpec,
) -> TrafficForecast {
    let d = rel.arity();
    let bfs = BfsOrder::new(d);
    let partial_payload = agg.init().wire_bytes() + 8; // state + tuple count

    let mut out = TrafficForecast {
        anchor_records: 0,
        anchor_bytes: 0,
        partial_records: 0,
        partial_bytes: 0,
    };

    let n = rel.len();
    let chunk = n.div_ceil(machines.max(1)).max(1);
    for split in rel.tuples().chunks(chunk) {
        let mut local_skews: HashSet<Group> = HashSet::new();
        for t in split {
            let mut lat = TupleLattice::new(t, &bfs);
            let mut rank = 0u32;
            while let Some((mask, at)) = lat.next_unmarked(rank) {
                rank = at;
                let g = Group::of_tuple(t, mask);
                if sketch.is_skewed_group(&g) {
                    local_skews.insert(g);
                    lat.mark(mask);
                } else {
                    out.anchor_records += 1;
                    out.anchor_bytes += g.wire_bytes() + t.wire_bytes();
                    lat.mark_with_ancestors(mask);
                }
            }
        }
        for g in local_skews {
            out.partial_records += 1;
            out.partial_bytes += g.wire_bytes() + partial_payload;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spcube::{sp_cube, SpCube, SpCubeConfig};
    use spcube_mapreduce::ClusterConfig;

    fn skewed_zipfish(n: usize) -> Relation {
        use spcube_common::{Schema, Value};
        let mut r = Relation::empty(Schema::synthetic(3));
        for i in 0..n {
            let dims = if i % 3 == 0 {
                vec![Value::Int(1), Value::Int(1), Value::Int(1)]
            } else {
                vec![
                    Value::Int((i % 17) as i64),
                    Value::Int((i % 23) as i64),
                    Value::Int((i % 29) as i64),
                ]
            };
            r.push_row(dims, 1.0);
        }
        r
    }

    #[test]
    fn forecast_matches_executed_round_exactly() {
        let rel = skewed_zipfish(6_000);
        let cluster = ClusterConfig::new(8, 300);
        // Use the exact sketch so the run and the forecast share it.
        let mut cfg = SpCubeConfig::new(AggSpec::Count);
        cfg.use_exact_sketch = true;
        let run = SpCube::run(&rel, &cluster, &cfg).unwrap();
        let forecast = forecast_cube_round(&rel, &run.sketch, cluster.machines, AggSpec::Count);
        let round = run.metrics.rounds.last().unwrap();
        assert_eq!(forecast.records(), round.map_output_records);
        assert_eq!(forecast.bytes(), round.map_output_bytes);
    }

    #[test]
    fn forecast_matches_with_sampled_sketch_too() {
        let rel = skewed_zipfish(5_000);
        let cluster = ClusterConfig::new(6, 250);
        let run = sp_cube(&rel, &cluster, AggSpec::Sum).unwrap();
        let forecast = forecast_cube_round(&rel, &run.sketch, cluster.machines, AggSpec::Sum);
        let round = run.metrics.rounds.last().unwrap();
        assert_eq!(forecast.records(), round.map_output_records);
        assert_eq!(forecast.bytes(), round.map_output_bytes);
    }

    #[test]
    fn benign_data_forecasts_at_most_d_anchors_per_tuple() {
        use spcube_mapreduce::ClusterConfig;
        let rel = {
            use rand::{Rng, SeedableRng};
            use spcube_common::{Schema, Value};
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            let mut r = Relation::empty(Schema::synthetic(4));
            for _ in 0..4_000 {
                r.push_row(
                    (0..4)
                        .map(|_| Value::Int(rng.gen::<u32>() as i64))
                        .collect(),
                    1.0,
                );
            }
            r
        };
        let cluster = ClusterConfig::new(8, 400);
        let sketch = crate::sketch::build_exact_sketch(&rel, &cluster);
        let f = forecast_cube_round(&rel, &sketch, 8, AggSpec::Count);
        assert!(f.anchors_per_tuple(rel.len()) <= 4.0 + 1e-9);
    }

    #[test]
    fn empty_relation_forecasts_zero() {
        use spcube_common::Schema;
        let rel = Relation::empty(Schema::synthetic(2));
        let cluster = ClusterConfig::new(4, 10);
        let sketch = crate::sketch::build_exact_sketch(&rel, &cluster);
        let f = forecast_cube_round(&rel, &sketch, 4, AggSpec::Count);
        assert_eq!(f.records(), 0);
        assert_eq!(f.bytes(), 0);
    }
}
