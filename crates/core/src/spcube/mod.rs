//! The SP-Cube algorithm (Section 5).
//!
//! Two MapReduce rounds:
//!
//! 1. **Sketch round** (Algorithm 2) — build the [`SpSketch`] from a
//!    Bernoulli sample, then broadcast it to every machine through the DFS.
//! 2. **Cube round** (Algorithm 3) — mappers walk each tuple's lattice
//!    bottom-up: skewed nodes are partially aggregated in the mapper;
//!    the first non-skewed unmarked node becomes an *anchor*, the full
//!    tuple is emitted to the reducer owning the anchor's lexicographic
//!    range, and the anchor's ancestors are marked (they will be derived
//!    reducer-side). Reducer 0 merges the skew partials; every other
//!    reducer runs BUC over each anchor group it receives and keeps
//!    exactly the ancestors assigned to that anchor.

mod job;

use spcube_agg::{AggOutput, AggSpec, AggState};
use spcube_common::{Error, Mask, Relation, Result};
use spcube_cubealg::Cube;
use spcube_mapreduce::{run_job, ClusterConfig, Dfs, RunMetrics, Stopwatch};
use spcube_obs::{names, SpanId};

use crate::sketch::{
    build_exact_sketch, build_sampled_sketch, build_sketch_from, SketchConfig, SpSketch,
};
use job::{DegradedCubeJob, SpCubeJob};

/// SP-Cube configuration.
#[derive(Debug, Clone)]
pub struct SpCubeConfig {
    /// The aggregate function to materialize.
    pub agg: AggSpec,
    /// Sketch-round parameters.
    pub sketch: SketchConfig,
    /// Use the exact (utopian) sketch instead of the sampled one. The exact
    /// sketch is built outside MapReduce and contributes no round metrics;
    /// used for validation and ablations.
    pub use_exact_sketch: bool,
    /// Compute each anchor's ancestors reducer-side via BUC (Observation
    /// 2.6). Disabling this ablation flag makes mappers emit every
    /// non-skewed lattice node separately — the traffic blow-up the anchor
    /// marking exists to avoid.
    pub factorize_ancestors: bool,
    /// Partially aggregate skewed c-groups map-side (Section 3.2).
    /// Disabling this ablation flag routes skewed groups through the range
    /// reducers like any other group, which overloads them.
    pub map_side_skew_aggregation: bool,
    /// Iceberg minimum support: only c-groups with at least this many
    /// contributing tuples are materialized (Fang et al., cited as \[22\]).
    /// Must not exceed the skew threshold `m + 1`: every skewed group has
    /// more than `m` tuples and passes trivially, and the reducers' BUC
    /// prunes the non-skewed side exactly. `1` materializes the full cube.
    pub min_support: usize,
}

impl SpCubeConfig {
    /// Paper-default configuration for an aggregate function.
    pub fn new(agg: AggSpec) -> SpCubeConfig {
        SpCubeConfig {
            agg,
            sketch: SketchConfig::default(),
            use_exact_sketch: false,
            factorize_ancestors: true,
            map_side_skew_aggregation: true,
            min_support: 1,
        }
    }
}

/// Everything a finished SP-Cube run produces.
#[derive(Debug)]
pub struct SpCubeRun {
    /// The materialized cube (exact, even in degraded runs).
    pub cube: Cube,
    /// Metrics of the executed MapReduce rounds (sketch round first).
    pub metrics: RunMetrics,
    /// The sketch used by the cube round. Empty when the run degraded (no
    /// usable sketch existed).
    pub sketch: SpSketch,
    /// Serialized size of the sketch as shipped through the DFS — the
    /// quantity of Figures 5c and 6c.
    pub sketch_bytes: u64,
    /// True when the cube round ran in degraded (hash-partitioned) mode
    /// because the sketch round failed permanently or the DFS copy of the
    /// sketch was rejected by checksum/invariant validation. Also visible
    /// as `fallback_events` in the cube round's metrics.
    pub degraded: bool,
}

/// The SP-Cube algorithm driver.
pub struct SpCube;

impl SpCube {
    /// Run SP-Cube on `rel` over the simulated `cluster`.
    pub fn run(rel: &Relation, cluster: &ClusterConfig, cfg: &SpCubeConfig) -> Result<SpCubeRun> {
        Self::run_on(rel, cluster, cfg, &Dfs::new())
    }

    /// [`SpCube::run`] against a caller-supplied DFS — the sketch is
    /// broadcast through `dfs`, so tests (and the chaos harness) can
    /// corrupt the stored sketch and observe the driver degrade.
    pub fn run_on(
        rel: &Relation,
        cluster: &ClusterConfig,
        cfg: &SpCubeConfig,
        dfs: &Dfs,
    ) -> Result<SpCubeRun> {
        let mut metrics = RunMetrics::default();
        let (sketch, sketch_bytes) = Self::sketch_round(rel, cluster, cfg, dfs, &mut metrics)?;
        let degraded = sketch.is_none();
        Self::record_sketch_obs(cluster, rel.arity(), sketch.as_ref(), &metrics);
        let cube = Self::cube_round(rel, cluster, cfg, sketch.as_ref(), &mut metrics)?;
        let sketch =
            sketch.unwrap_or_else(|| build_sketch_from(&[], rel.arity(), cluster.machines, 0.0));
        Ok(SpCubeRun {
            cube,
            metrics,
            sketch,
            sketch_bytes,
            degraded,
        })
    }

    /// Compute several aggregate functions over one relation, reusing a
    /// single SP-Sketch round — the paper notes the sketch "is independent
    /// of the aggregate function … once constructed, the same SP-Sketch can
    /// be used to efficiently compute multiple aggregate functions"
    /// (Section 4). Runs one cube round per function; the shared metrics
    /// contain the sketch round followed by the cube rounds in order.
    pub fn run_many(
        rel: &Relation,
        cluster: &ClusterConfig,
        cfg: &SpCubeConfig,
        aggs: &[AggSpec],
    ) -> Result<(Vec<(AggSpec, Cube)>, RunMetrics)> {
        let mut metrics = RunMetrics::default();
        let (sketch, _bytes) = Self::sketch_round(rel, cluster, cfg, &Dfs::new(), &mut metrics)?;
        Self::record_sketch_obs(cluster, rel.arity(), sketch.as_ref(), &metrics);
        let mut cubes = Vec::with_capacity(aggs.len());
        for &agg in aggs {
            let mut round_cfg = cfg.clone();
            round_cfg.agg = agg;
            let cube = Self::cube_round(rel, cluster, &round_cfg, sketch.as_ref(), &mut metrics)?;
            cubes.push((agg, cube));
        }
        Ok((cubes, metrics))
    }

    /// Round 1: build the sketch and broadcast it through the DFS (Section
    /// 4.2 — every machine caches a copy before the cube round starts).
    ///
    /// Returns `None` — degrade, don't die — in two cases the cube round
    /// must survive:
    ///
    /// * the sketch round failed *permanently* (a task exhausted its retry
    ///   budget, [`Error::JobFailed`]): the sketch is an optimization, so
    ///   losing it costs performance, never the answer;
    /// * the sketch read back from the DFS is rejected — checksum mismatch
    ///   (bit-rot in transit/storage) or a violated semantic invariant
    ///   ([`SpSketch::validate`]). Partitioning with a corrupt sketch
    ///   could silently split one c-group across reducers; refusing it and
    ///   falling back keeps the output exact.
    fn sketch_round(
        rel: &Relation,
        cluster: &ClusterConfig,
        cfg: &SpCubeConfig,
        dfs: &Dfs,
        metrics: &mut RunMetrics,
    ) -> Result<(Option<SpSketch>, u64)> {
        let sketch = if cfg.use_exact_sketch {
            build_exact_sketch(rel, cluster)
        } else {
            match build_sampled_sketch(rel, cluster, &cfg.sketch) {
                Ok((sketch, round)) => {
                    metrics.push(round);
                    sketch
                }
                Err(Error::JobFailed { .. }) => return Ok((None, 0)),
                Err(e) => return Err(e),
            }
        };
        dfs.put("sp-sketch", sketch.to_bytes()?);
        for _ in 0..cluster.machines {
            let _ = dfs.get("sp-sketch")?;
        }
        let sketch_bytes = dfs.len_of("sp-sketch").unwrap_or(0);
        // Each machine works from its cached DFS copy, so the driver trusts
        // the round-tripped bytes, not the in-memory builder output.
        match SpSketch::from_bytes(&dfs.get("sp-sketch")?) {
            Ok(s) if s.validate().is_ok() => Ok((Some(s), sketch_bytes)),
            _ => Ok((None, sketch_bytes)),
        }
    }

    /// Record sketch-phase telemetry: the sketch round's simulated build
    /// time and the skewed-group count the sketch recorded per cuboid.
    fn record_sketch_obs(
        cluster: &ClusterConfig,
        arity: usize,
        sketch: Option<&SpSketch>,
        metrics: &RunMetrics,
    ) {
        let obs = &cluster.obs;
        if !obs.enabled() {
            return;
        }
        if let Some(round) = metrics.rounds.iter().find(|r| r.name == "sp-sketch") {
            obs.gauge_set(names::SPCUBE_SKETCH_SECONDS, &[], round.simulated_seconds);
        }
        if let Some(sketch) = sketch {
            for mask in Mask::full(arity).subsets() {
                let skewed = sketch.node(mask).skew_count() as u64;
                if skewed > 0 {
                    obs.add(
                        names::SPCUBE_SKETCH_SKEWED,
                        &[("cuboid", mask.0.to_string())],
                        skewed,
                    );
                }
            }
        }
    }

    /// Round 2: compute the cube with `k` range reducers plus reducer 0 —
    /// or, without a usable sketch, the degraded hash-partitioned job
    /// (flagged in the round's `fallback_events`).
    fn cube_round(
        rel: &Relation,
        cluster: &ClusterConfig,
        cfg: &SpCubeConfig,
        sketch: Option<&SpSketch>,
        metrics: &mut RunMetrics,
    ) -> Result<Cube> {
        if cfg.min_support > cluster.skew_threshold() + 1 {
            return Err(Error::Config(format!(
                "iceberg min_support {} exceeds the skew threshold m+1 = {}; skewed groups \
                 could not be filtered exactly",
                cfg.min_support,
                cluster.skew_threshold() + 1
            )));
        }
        let obs = &cluster.obs;
        let mut result = match sketch {
            Some(sketch) => {
                let mut job = SpCubeJob::new(sketch, rel.arity(), cfg);
                job.anchor_hist = obs.histogram(names::SPCUBE_ANCHOR_LEVEL, &[]);
                run_job(cluster, &job, rel.tuples(), cluster.machines + 1)?
            }
            None => {
                let job = DegradedCubeJob::new(rel.arity(), cfg);
                run_job(cluster, &job, rel.tuples(), cluster.machines + 1)?
            }
        };
        if sketch.is_none() {
            result.metrics.fallback_events = 1;
            obs.event(names::SPCUBE_DEGRADED, SpanId::ROOT, &[]);
        }
        if obs.enabled() {
            // Per-reducer tuple load and the max/mean imbalance ratio over
            // the range reducers — reducer 0 is the dedicated skew reducer
            // and is excluded when a sketch routed skews to it (matching
            // the benchmark's imbalance accounting).
            let loads = &result.metrics.reducer_input_bytes;
            for (r, &bytes) in loads.iter().enumerate() {
                obs.gauge_set(
                    names::SPCUBE_REDUCER_LOAD,
                    &[("reducer", r.to_string())],
                    bytes as f64,
                );
            }
            let skip = usize::from(sketch.is_some());
            let range = loads.get(skip..).unwrap_or(&[]);
            if !range.is_empty() {
                let max = range.iter().copied().max().unwrap_or(0) as f64;
                let mean = range.iter().map(|&b| b as f64).sum::<f64>() / range.len() as f64;
                let ratio = if mean == 0.0 { 1.0 } else { max / mean };
                obs.gauge_set(names::SPCUBE_REDUCER_IMBALANCE, &[], ratio);
            }
        }
        metrics.push(result.metrics.clone());
        Ok(Cube::from_pairs(result.into_flat_outputs()))
    }
}

/// Everything [`SpCube::run_and_store`] produces: the run itself plus the
/// store phase's write report.
#[derive(Debug)]
pub struct SpCubeStoreRun {
    /// The underlying two-round run.
    pub run: SpCubeRun,
    /// What the store phase wrote (segments, bytes, rows).
    pub report: spcube_cubestore::StoreWriteReport,
    /// The store prefix on the DFS (open with `CubeStore::open`).
    pub prefix: String,
}

impl SpCube {
    /// Run SP-Cube and then persist the cube as a columnar store under
    /// `prefix` on `dfs` — the final "store" phase of the pipeline
    /// (Section 3.1's one-file-per-cuboid output, made queryable).
    ///
    /// The phase is accounted as an extra `cube-store` round in the run
    /// metrics: its written bytes land in `reducer_output_bytes` (they
    /// also show up in the DFS `bytes_written` counter, alongside the
    /// sketch broadcast) and its rows in `output_records`, so benchmark
    /// CSVs pick the store phase up like any other round.
    pub fn run_and_store(
        rel: &Relation,
        cluster: &ClusterConfig,
        cfg: &SpCubeConfig,
        dfs: &Dfs,
        prefix: &str,
    ) -> Result<SpCubeStoreRun> {
        let mut run = Self::run_on(rel, cluster, cfg, dfs)?;
        let t0 = Stopwatch::start();
        let report = spcube_cubestore::write_store(
            dfs,
            prefix,
            &run.cube,
            rel.arity(),
            cfg.agg,
            cfg.min_support,
        )?;
        let round = spcube_mapreduce::JobMetrics {
            name: "cube-store".into(),
            reduce_tasks: 1,
            output_records: report.rows,
            reducer_output_bytes: vec![report.bytes],
            wall_seconds: t0.seconds(),
            ..Default::default()
        };
        run.metrics.push(round);
        Ok(SpCubeStoreRun {
            run,
            report,
            prefix: prefix.to_string(),
        })
    }
}

/// Everything [`SpCube::ingest_delta`] produces.
#[derive(Debug)]
pub struct SpCubeIngestRun {
    /// What the delta commit wrote (generation, chain, segments, bytes).
    pub report: spcube_cubestore::DeltaWriteReport,
    /// Rounds this ingest ran: empty + one `delta-ingest` round for the
    /// in-process path, or a full sketch/cube run followed by the
    /// `delta-ingest` round for a big batch routed through MapReduce.
    pub metrics: RunMetrics,
    /// Whether the batch was cubed through the SP-Sketch MapReduce path
    /// (large distributive batch) or the single in-process pass.
    pub via_mapreduce: bool,
    /// The store prefix on the DFS (open with `CubeStore::open`).
    pub prefix: String,
}

/// Batches at or below this many tuples are cubed by the single
/// in-process pass of [`spcube_cubestore::state_cube`]; larger batches of
/// a distributive aggregate go through the SP-Sketch MapReduce path so
/// the append cost keeps scaling with cluster size.
pub const DELTA_INPROCESS_MAX: usize = 32_768;

impl SpCube {
    /// Cube only the appended `batch` and publish it as a new delta layer
    /// under `prefix` on `dfs` — incremental maintenance instead of a
    /// full recompute. Layered reads merge this layer with the base
    /// bit-exactly (the merge laws of [`spcube_agg`]), so the answers
    /// equal a from-scratch rebuild over base + batch.
    ///
    /// Small batches take a single cheap in-process round; a batch larger
    /// than [`DELTA_INPROCESS_MAX`] with a distributive aggregate
    /// (COUNT/SUM/MIN/MAX, whose outputs convert losslessly to states)
    /// reuses the SP-Sketch path via [`SpCube::run_on`]. Requires
    /// `cfg.min_support == 1`: per-batch iceberg pruning would drop
    /// groups that only reach the support threshold across batches.
    pub fn ingest_delta(
        batch: &Relation,
        cluster: &ClusterConfig,
        cfg: &SpCubeConfig,
        dfs: &Dfs,
        prefix: &str,
    ) -> Result<SpCubeIngestRun> {
        if cfg.min_support != 1 {
            return Err(Error::Config(format!(
                "delta ingest requires min_support 1 (got {}): per-batch iceberg pruning \
                 would break layered bit-exactness",
                cfg.min_support
            )));
        }
        let t0 = Stopwatch::start();
        let distributive = matches!(
            cfg.agg,
            AggSpec::Count | AggSpec::Sum | AggSpec::Min | AggSpec::Max
        );
        let via_mapreduce = distributive && batch.len() > DELTA_INPROCESS_MAX;
        let mut metrics = RunMetrics::default();
        let report = if via_mapreduce {
            let run = Self::run_on(batch, cluster, cfg, dfs)?;
            metrics = run.metrics;
            let states = cube_states(&run.cube, cfg.agg)?;
            spcube_cubestore::ingest_states(dfs, prefix, batch.arity(), cfg.agg, states)?
        } else {
            spcube_cubestore::ingest_batch(dfs, prefix, batch, cfg.agg)?
        };
        let round = spcube_mapreduce::JobMetrics {
            name: "delta-ingest".into(),
            reduce_tasks: 1,
            output_records: report.rows,
            reducer_output_bytes: vec![report.bytes],
            wall_seconds: t0.seconds(),
            ..Default::default()
        };
        metrics.push(round);
        let obs = &cluster.obs;
        if obs.enabled() {
            obs.inc(names::STORE_DELTA_INGEST, &[]);
            obs.add(names::STORE_DELTA_ROWS, &[], report.rows);
            obs.hist_record(names::STORE_DELTA_INGEST_US, &[], t0.seconds() * 1e6);
            obs.gauge_set(names::STORE_LAYER_COUNT, &[], report.layers.len() as f64);
            obs.event(
                names::STORE_DELTA_INGEST,
                SpanId::ROOT,
                &[
                    ("generation", report.generation.to_string()),
                    ("layers", report.layers.len().to_string()),
                ],
            );
        }
        Ok(SpCubeIngestRun {
            report,
            metrics,
            via_mapreduce,
            prefix: prefix.to_string(),
        })
    }
}

/// Convert a materialized cube of a *distributive* aggregate into
/// mergeable per-cuboid states, losslessly (COUNT/SUM/MIN/MAX outputs
/// carry their whole state). The bridge that lets the SP-Sketch MapReduce
/// path feed [`spcube_cubestore::ingest_states`]; algebraic/holistic
/// aggregates must be cubed by `state_cube` instead and are rejected with
/// a typed error.
pub fn cube_states(cube: &Cube, spec: AggSpec) -> Result<spcube_cubestore::StateCube> {
    let mut states = spcube_cubestore::StateCube::new();
    for (g, v) in cube.iter() {
        let state = match (spec, v) {
            (AggSpec::Count, AggOutput::Number(x)) => AggState::Count(*x as u64),
            (AggSpec::Sum, AggOutput::Number(x)) => AggState::Sum(*x),
            (AggSpec::Min, AggOutput::Number(x)) => AggState::Min(*x),
            (AggSpec::Max, AggOutput::Number(x)) => AggState::Max(*x),
            _ => {
                return Err(Error::Config(format!(
                    "{spec:?} outputs are not losslessly convertible to states; \
                     cube the batch with state_cube instead"
                )))
            }
        };
        states
            .entry(g.mask)
            .or_default()
            .push((g.key.clone(), state));
    }
    Ok(states)
}

/// Convenience wrapper: run SP-Cube with default configuration.
pub fn sp_cube(rel: &Relation, cluster: &ClusterConfig, agg: AggSpec) -> Result<SpCubeRun> {
    SpCube::run(rel, cluster, &SpCubeConfig::new(agg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcube_common::{Schema, Value};
    use spcube_cubealg::naive_cube;

    fn rel_with_skew(n: usize, hot: usize, d: usize) -> Relation {
        let mut r = Relation::empty(Schema::synthetic(d));
        for i in 0..n {
            let mut dims = Vec::with_capacity(d);
            if i < hot {
                // Heavy pattern: all dims equal 1.
                dims.resize(d, Value::Int(1));
            } else {
                for j in 0..d {
                    dims.push(Value::Int((i * (j + 3)) as i64 % 50));
                }
            }
            r.push_row(dims, (i % 7) as f64);
        }
        r
    }

    #[test]
    fn spcube_matches_naive_reference() {
        let rel = rel_with_skew(2000, 600, 3);
        let cluster = ClusterConfig::new(8, 150);
        for agg in [
            AggSpec::Count,
            AggSpec::Sum,
            AggSpec::Min,
            AggSpec::Max,
            AggSpec::Avg,
        ] {
            let run = sp_cube(&rel, &cluster, agg).expect("run");
            let expect = naive_cube(&rel, agg);
            assert!(
                run.cube.approx_eq(&expect, 1e-9),
                "{agg:?}: {:?}",
                run.cube.diff(&expect, 1e-9, 5)
            );
        }
    }

    #[test]
    fn spcube_with_exact_sketch_matches_naive() {
        let rel = rel_with_skew(1500, 500, 3);
        let cluster = ClusterConfig::new(5, 100);
        let mut cfg = SpCubeConfig::new(AggSpec::Sum);
        cfg.use_exact_sketch = true;
        let run = SpCube::run(&rel, &cluster, &cfg).expect("run");
        let expect = naive_cube(&rel, AggSpec::Sum);
        assert!(
            run.cube.approx_eq(&expect, 1e-9),
            "{:?}",
            run.cube.diff(&expect, 1e-9, 5)
        );
        // Exact sketch contributes no MR round: only the cube round.
        assert_eq!(run.metrics.round_count(), 1);
    }

    #[test]
    fn ablation_no_factorization_still_correct_but_heavier() {
        let rel = rel_with_skew(1200, 300, 3);
        let cluster = ClusterConfig::new(6, 100);
        let mut base = SpCubeConfig::new(AggSpec::Count);
        base.use_exact_sketch = true;
        let mut flat = base.clone();
        flat.factorize_ancestors = false;
        let run_base = SpCube::run(&rel, &cluster, &base).expect("run");
        let run_flat = SpCube::run(&rel, &cluster, &flat).expect("run");
        let expect = naive_cube(&rel, AggSpec::Count);
        assert!(run_flat.cube.approx_eq(&expect, 1e-9));
        assert!(
            run_flat.metrics.map_output_records() > run_base.metrics.map_output_records(),
            "factorization must reduce traffic: {} vs {}",
            run_flat.metrics.map_output_records(),
            run_base.metrics.map_output_records()
        );
    }

    #[test]
    fn ablation_no_map_side_skew_aggregation_still_correct() {
        let rel = rel_with_skew(1200, 500, 3);
        let cluster = ClusterConfig::new(6, 100);
        let mut cfg = SpCubeConfig::new(AggSpec::Sum);
        cfg.use_exact_sketch = true;
        cfg.map_side_skew_aggregation = false;
        let run = SpCube::run(&rel, &cluster, &cfg).expect("run");
        let expect = naive_cube(&rel, AggSpec::Sum);
        assert!(
            run.cube.approx_eq(&expect, 1e-9),
            "{:?}",
            run.cube.diff(&expect, 1e-9, 5)
        );
        // Without map-side aggregation the skewed groups overload reducers.
        assert!(
            run.metrics.spilled_bytes() > 0 || run.metrics.rounds[0].largest_group_values > 500
        );
    }

    #[test]
    fn two_rounds_and_small_sketch() {
        let rel = rel_with_skew(3000, 900, 4);
        let cluster = ClusterConfig::new(10, 200);
        let run = sp_cube(&rel, &cluster, AggSpec::Count).expect("run");
        assert_eq!(run.metrics.round_count(), 2);
        assert!(run.sketch_bytes > 0);
        assert!(
            run.sketch_bytes < rel.wire_bytes() / 5,
            "sketch must be small"
        );
        assert!(!run.degraded);
        assert_eq!(run.metrics.fallback_events(), 0);
    }

    #[test]
    fn run_and_store_persists_a_queryable_cube() {
        use spcube_cubealg::{CubeQuery, CubeRead};

        let rel = rel_with_skew(1500, 400, 3);
        let cluster = ClusterConfig::new(6, 120);
        let dfs = std::sync::Arc::new(Dfs::new());
        let cfg = SpCubeConfig::new(AggSpec::Sum);
        let stored = SpCube::run_and_store(&rel, &cluster, &cfg, &dfs, "cube").expect("run");

        // The store phase is accounted as its own metrics round.
        let last = stored
            .run
            .metrics
            .rounds
            .last()
            .expect("at least one round");
        assert_eq!(last.name, "cube-store");
        assert_eq!(last.output_records, stored.report.rows);
        assert_eq!(stored.report.rows as usize, stored.run.cube.len());
        assert!(stored.report.segments > 0);
        // Store bytes flow through the DFS byte accounting.
        assert!(dfs.bytes_written() >= stored.report.bytes);

        // The persisted store answers exactly like the in-memory index.
        let store = spcube_cubestore::CubeStore::open(
            dfs as std::sync::Arc<dyn spcube_cubestore::BlobStore>,
            "cube",
        )
        .expect("run");
        let q = CubeQuery::new(&stored.run.cube, rel.arity());
        for mask in spcube_common::Mask::full(rel.arity()).subsets() {
            assert_eq!(
                store.cuboid_len(mask).expect("cuboid_len"),
                q.cuboid_len(mask)
            );
        }
        let top_store = store.top(spcube_common::Mask(0b011), 5).expect("run");
        let top_mem = q.top(spcube_common::Mask(0b011), 5);
        assert_eq!(top_store.len(), top_mem.len());
        for ((g, x), (hg, hx)) in top_store.iter().zip(top_mem) {
            assert_eq!(g, hg);
            assert_eq!(*x, hx);
        }
    }

    #[test]
    fn corrupt_sketch_on_dfs_triggers_fallback_with_exact_output() {
        // One flipped bit in the stored sketch: the checksum rejects it and
        // the cube round degrades to hash partitioning — same cube.
        let rel = rel_with_skew(1500, 500, 3);
        let cluster = ClusterConfig::new(6, 120);
        let cfg = SpCubeConfig::new(AggSpec::Sum);
        let dfs = Dfs::new();
        dfs.corrupt_next_write("sp-sketch");
        let run = SpCube::run_on(&rel, &cluster, &cfg, &dfs).expect("run");
        assert!(run.degraded, "corrupt sketch must degrade the run");
        assert_eq!(run.metrics.fallback_events(), 1);
        assert_eq!(
            run.metrics.rounds.last().expect("at least one round").name,
            "sp-cube-degraded"
        );
        assert_eq!(
            run.sketch.skew_count(),
            0,
            "degraded run carries an empty sketch"
        );
        let expect = naive_cube(&rel, AggSpec::Sum);
        assert!(
            run.cube.approx_eq(&expect, 1e-9),
            "{:?}",
            run.cube.diff(&expect, 1e-9, 5)
        );
    }

    #[test]
    fn permanent_sketch_round_failure_degrades_instead_of_dying() {
        // Every sketch-round attempt fails and the retry budget runs out;
        // the cube round must still produce the exact cube, degraded.
        let rel = rel_with_skew(1200, 400, 3);
        let mut cluster = ClusterConfig::new(6, 100);
        cluster.faults.task_failure_prob = 0.999_999;
        cluster.faults.only_job = Some("sp-sketch".into());
        cluster.retry.max_attempts = 2;
        let run = SpCube::run(&rel, &cluster, &SpCubeConfig::new(AggSpec::Count)).expect("run");
        assert!(run.degraded);
        assert_eq!(run.metrics.fallback_events(), 1);
        assert_eq!(run.sketch_bytes, 0, "no sketch ever reached the DFS");
        let expect = naive_cube(&rel, AggSpec::Count);
        assert!(
            run.cube.approx_eq(&expect, 1e-9),
            "{:?}",
            run.cube.diff(&expect, 1e-9, 5)
        );
        // Only the degraded cube round ran to completion.
        assert_eq!(run.metrics.round_count(), 1);
        assert_eq!(run.metrics.rounds[0].name, "sp-cube-degraded");
    }

    #[test]
    fn degraded_mode_supports_every_aggregate() {
        let rel = rel_with_skew(800, 250, 3);
        let cluster = ClusterConfig::new(5, 80);
        for agg in [
            AggSpec::Count,
            AggSpec::Sum,
            AggSpec::Min,
            AggSpec::Max,
            AggSpec::Avg,
            AggSpec::CountDistinct,
            AggSpec::TopKFrequent(2),
        ] {
            let dfs = Dfs::new();
            dfs.corrupt_next_write("sp-sketch");
            let run = SpCube::run_on(&rel, &cluster, &SpCubeConfig::new(agg), &dfs).expect("run");
            assert!(run.degraded);
            let expect = naive_cube(&rel, agg);
            assert!(
                run.cube.approx_eq(&expect, 1e-9),
                "{agg:?}: {:?}",
                run.cube.diff(&expect, 1e-9, 5)
            );
        }
    }

    #[test]
    fn topk_holistic_aggregate_supported() {
        let rel = rel_with_skew(800, 200, 3);
        let cluster = ClusterConfig::new(4, 100);
        let run = sp_cube(&rel, &cluster, AggSpec::TopKFrequent(2)).expect("run");
        let expect = naive_cube(&rel, AggSpec::TopKFrequent(2));
        assert!(
            run.cube.approx_eq(&expect, 1e-9),
            "{:?}",
            run.cube.diff(&expect, 1e-9, 5)
        );
    }

    #[test]
    fn single_machine_cluster_works() {
        let rel = rel_with_skew(300, 100, 2);
        let cluster = ClusterConfig::new(1, 50);
        let run = sp_cube(&rel, &cluster, AggSpec::Count).expect("run");
        let expect = naive_cube(&rel, AggSpec::Count);
        assert!(run.cube.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn run_many_shares_one_sketch_round() {
        let rel = rel_with_skew(1500, 400, 3);
        let cluster = ClusterConfig::new(6, 100);
        let cfg = SpCubeConfig::new(AggSpec::Count);
        let (cubes, metrics) = SpCube::run_many(
            &rel,
            &cluster,
            &cfg,
            &[AggSpec::Count, AggSpec::Sum, AggSpec::Avg],
        )
        .expect("run");
        // One sketch round + three cube rounds.
        assert_eq!(metrics.round_count(), 4);
        assert_eq!(metrics.rounds[0].name, "sp-sketch");
        for (agg, cube) in &cubes {
            let expect = naive_cube(&rel, *agg);
            assert!(cube.approx_eq(&expect, 1e-9), "{agg:?}");
        }
        // Cheaper than three independent runs (which would pay the sample
        // round thrice).
        let separate: f64 = [AggSpec::Count, AggSpec::Sum, AggSpec::Avg]
            .iter()
            .map(|&a| {
                sp_cube(&rel, &cluster, a)
                    .expect("run")
                    .metrics
                    .total_seconds()
            })
            .sum();
        assert!(metrics.total_seconds() < separate);
    }

    #[test]
    fn iceberg_min_support_filters_small_groups() {
        let rel = rel_with_skew(2000, 600, 3);
        let cluster = ClusterConfig::new(8, 150);
        let mut cfg = SpCubeConfig::new(AggSpec::Sum);
        cfg.min_support = 50;
        let run = SpCube::run(&rel, &cluster, &cfg).expect("run");
        // Reference: full cube filtered by exact cardinality >= 5.
        let counts = naive_cube(&rel, AggSpec::Count);
        let sums = naive_cube(&rel, AggSpec::Sum);
        let expect = spcube_cubealg::Cube::from_pairs(
            sums.iter()
                .filter(|(g, _)| counts.get(g).expect("count for group").number() >= 50.0)
                .map(|(g, v)| (g.clone(), v.clone())),
        );
        assert!(
            run.cube.approx_eq(&expect, 1e-9),
            "{:?}",
            run.cube.diff(&expect, 1e-9, 5)
        );
        assert!(run.cube.len() < sums.len(), "iceberg must prune something");
    }

    #[test]
    fn iceberg_min_support_above_skew_threshold_rejected() {
        let rel = rel_with_skew(500, 100, 2);
        let cluster = ClusterConfig::new(4, 50);
        let mut cfg = SpCubeConfig::new(AggSpec::Count);
        cfg.min_support = 200;
        assert!(SpCube::run(&rel, &cluster, &cfg).is_err());
    }

    #[test]
    fn count_distinct_partially_algebraic_supported() {
        let rel = rel_with_skew(1000, 300, 3);
        let cluster = ClusterConfig::new(5, 80);
        let run = sp_cube(&rel, &cluster, AggSpec::CountDistinct).expect("run");
        let expect = naive_cube(&rel, AggSpec::CountDistinct);
        assert!(
            run.cube.approx_eq(&expect, 1e-9),
            "{:?}",
            run.cube.diff(&expect, 1e-9, 5)
        );
    }

    #[test]
    fn empty_relation_yields_empty_cube() {
        let rel = Relation::empty(Schema::synthetic(3));
        let cluster = ClusterConfig::new(4, 10);
        let run = sp_cube(&rel, &cluster, AggSpec::Count).expect("run");
        assert!(run.cube.is_empty());
    }

    #[test]
    fn string_dimensions_work_end_to_end() {
        let mut rel =
            Relation::empty(Schema::new(["name", "city", "year"], "sales").expect("schema"));
        let cities = ["Rome", "Paris", "London"];
        let products = ["laptop", "printer", "keyboard", "mouse"];
        for i in 0..600usize {
            // Make laptop/Rome heavily skewed.
            let (p, c) = if i % 2 == 0 {
                ("laptop", "Rome")
            } else {
                (products[i % 4], cities[i % 3])
            };
            rel.push_row(
                vec![p.into(), c.into(), Value::Int(2010 + (i % 5) as i64)],
                (i % 100) as f64,
            );
        }
        let cluster = ClusterConfig::new(5, 60);
        let run = sp_cube(&rel, &cluster, AggSpec::Sum).expect("run");
        let expect = naive_cube(&rel, AggSpec::Sum);
        assert!(
            run.cube.approx_eq(&expect, 1e-9),
            "{:?}",
            run.cube.diff(&expect, 1e-9, 5)
        );
    }
}
