//! The cube-round MapReduce job (Algorithm 3).

use std::collections::HashMap;

use spcube_agg::{AggOutput, AggSpec, AggState};
use spcube_common::{Group, Mask, Tuple};
use spcube_cubealg::{buc_from, BucConfig};
use spcube_lattice::{anchor_mask, BfsOrder, TupleLattice};
use spcube_mapreduce::{LargeGroupBehavior, MapContext, MrJob, ReduceContext};

use super::SpCubeConfig;
use crate::sketch::SpSketch;

/// Shuffle value: either a whole input tuple routed to an anchor's range
/// reducer, or a mapper's partial aggregate of a skewed c-group bound for
/// reducer 0.
#[derive(Debug, Clone)]
pub(crate) enum SpValue {
    /// A full tuple (the reducer needs every dimension to derive ancestor
    /// groups with BUC).
    Row(Tuple),
    /// A map-side partial aggregate of a skewed group, with the number of
    /// tuples folded into it (lets reducer 0 apply iceberg pruning exactly
    /// even if the sampled sketch mislabelled a small group as skewed).
    Partial(AggState, u64),
}

/// The second (cube) round of SP-Cube.
pub(crate) struct SpCubeJob<'a> {
    sketch: &'a SpSketch,
    d: usize,
    spec: AggSpec,
    factorize: bool,
    skew_agg: bool,
    bfs: BfsOrder,
    buc_cfg: BucConfig,
    /// Anchor-placement histogram (`spcube.anchor.level`): one sample per
    /// shipped anchor, valued at the anchor cuboid's dimensionality.
    /// Pre-grabbed from the registry so the mapper hot loop pays one
    /// atomic increment, never a registry lookup; `None` when
    /// observability is off.
    pub(crate) anchor_hist: Option<std::sync::Arc<spcube_obs::Histogram>>,
}

impl<'a> SpCubeJob<'a> {
    pub(crate) fn new(sketch: &'a SpSketch, d: usize, cfg: &SpCubeConfig) -> SpCubeJob<'a> {
        SpCubeJob {
            sketch,
            d,
            spec: cfg.agg,
            factorize: cfg.factorize_ancestors,
            skew_agg: cfg.map_side_skew_aggregation,
            bfs: BfsOrder::new(d),
            buc_cfg: BucConfig {
                min_support: cfg.min_support,
            },
            anchor_hist: None,
        }
    }

    /// Effective skew test: the ablation that disables map-side skew
    /// aggregation must disable it *everywhere* (mapper routing, the range
    /// partitioner, and the reducers' anchor filter evaluate the same
    /// oracle), otherwise mappers and reducers would disagree on
    /// assignment.
    #[inline]
    fn is_skewed(&self, g: &Group) -> bool {
        self.skew_agg && self.sketch.is_skewed_group(g)
    }
}

impl MrJob for SpCubeJob<'_> {
    type Input = Tuple;
    type Key = Group;
    type Value = SpValue;
    type Output = (Group, AggOutput);

    fn name(&self) -> String {
        "sp-cube".into()
    }

    fn map_split(&self, ctx: &mut MapContext<'_, Group, SpValue>, split: &[Tuple]) {
        // Partial aggregates of skewed c-groups, kept in a hash table keyed
        // by the group (Section 5: "maintaining a hash table in which items
        // correspond to the skewed c-groups"). Proposition 4.7 bounds its
        // size by O(2^d · k) = O(m).
        // spcheck:allow(determinism): iteration is sorted before emission (flush below)
        let mut partials: HashMap<Group, (AggState, u64)> = HashMap::new();

        for t in split {
            let mut lat = TupleLattice::new(t, &self.bfs);
            let mut rank = 0u32;
            while let Some((mask, at)) = lat.next_unmarked(rank) {
                rank = at;
                ctx.charge(1);
                let g = Group::of_tuple(t, mask);
                if self.is_skewed(&g) {
                    // Lines 6-8: aggregate locally, mark only this node.
                    let entry = partials.entry(g).or_insert_with(|| (self.spec.init(), 0));
                    entry.0.update(t.measure);
                    entry.1 += 1;
                    lat.mark(mask);
                } else {
                    // Lines 9-13: ship the tuple to the anchor's range
                    // reducer; the reducer derives all ancestors, so mark
                    // them (Observation 2.6).
                    if let Some(h) = &self.anchor_hist {
                        h.record(f64::from(mask.0.count_ones()));
                    }
                    ctx.emit(g, SpValue::Row(t.clone()));
                    if self.factorize {
                        lat.mark_with_ancestors(mask);
                    } else {
                        lat.mark(mask);
                    }
                }
            }
        }

        // Lines 16-20: flush the skew partials to reducer 0. Sorted for
        // deterministic emission order (HashMap iteration order is
        // randomized).
        let mut flat: Vec<(Group, (AggState, u64))> = partials.into_iter().collect();
        flat.sort_by(|a, b| a.0.cmp(&b.0));
        for (g, (state, count)) in flat {
            ctx.emit(g, SpValue::Partial(state, count));
        }
    }

    /// Sketch-driven partitioner: skewed groups to reducer 0, everything
    /// else to the reducer owning its cuboid's range.
    ///
    /// The range->reducer assignment is rotated by a per-cuboid offset.
    /// Without it, range `i` of *every* cuboid lands on reducer `i+1`, and
    /// since heavy (but non-skewed) head values sort at the front of every
    /// cuboid's order, all cuboids' hottest ranges collide on reducer 1.
    /// The rotation decorrelates cuboids while preserving the paper's
    /// invariant that one range maps to exactly one reducer.
    fn partition(&self, key: &Group, reducers: usize) -> usize {
        if self.is_skewed(key) {
            0
        } else {
            let ranges = reducers.saturating_sub(1).max(1);
            let range = self.sketch.partition_of(key.mask, &key.key).min(ranges - 1);
            let offset = (key.mask.0 as usize).wrapping_mul(0x9e37_79b9) % ranges;
            1 + (range + offset) % ranges
        }
    }

    fn reduce(
        &self,
        ctx: &mut ReduceContext<'_, (Group, AggOutput)>,
        key: Group,
        values: Vec<SpValue>,
    ) {
        if self.is_skewed(&key) {
            // Reducer 0: merge at most k partial aggregates per group.
            let mut state = self.spec.init();
            let mut tuples = 0u64;
            for v in &values {
                match v {
                    SpValue::Partial(p, count) => {
                        state.merge(p);
                        tuples += count;
                    }
                    // spcheck:allow(no_panic): shuffle-protocol invariant, a code bug not corrupt data
                    SpValue::Row(_) => unreachable!("skewed group received a raw tuple"),
                }
            }
            ctx.charge(values.len() as u64);
            if tuples >= self.buc_cfg.min_support as u64 {
                ctx.emit((key, state.finalize()));
            }
            return;
        }

        if !self.factorize {
            // Ablation: each group receives exactly its own tuples.
            if values.len() < self.buc_cfg.min_support {
                return; // iceberg pruning
            }
            let mut state = self.spec.init();
            for v in &values {
                match v {
                    SpValue::Row(t) => state.update(t.measure),
                    // spcheck:allow(no_panic): shuffle-protocol invariant, a code bug not corrupt data
                    SpValue::Partial(..) => unreachable!("non-skewed group received a partial"),
                }
            }
            ctx.charge(values.len() as u64);
            ctx.emit((key, state.finalize()));
            return;
        }

        // Anchor group: run BUC over the anchor's tuples, computing the
        // anchor and exactly those ancestors assigned to it — an ancestor
        // `h` belongs to the BFS-first non-skewed descendant of `h`
        // (Section 5.1's shared-ancestor rule).
        let tuples: Vec<Tuple> = values
            .into_iter()
            .map(|v| match v {
                SpValue::Row(t) => t,
                // spcheck:allow(no_panic): shuffle-protocol invariant, a code bug not corrupt data
                SpValue::Partial(..) => unreachable!("non-skewed group received a partial"),
            })
            .collect();
        let mut refs: Vec<&Tuple> = tuples.iter().collect();
        let anchor = key.mask;
        buc_from(
            &mut refs,
            self.d,
            anchor,
            self.spec,
            &self.buc_cfg,
            &mut |h, state| {
                ctx.charge(1);
                let assigned = anchor_mask(h.mask, |sub| self.is_skewed(&h.project(sub)));
                if assigned == Some(anchor) {
                    ctx.emit((h, state.finalize()));
                }
            },
        );
    }

    fn key_bytes(&self, key: &Group) -> u64 {
        key.wire_bytes()
    }

    fn value_bytes(&self, value: &SpValue) -> u64 {
        match value {
            SpValue::Row(t) => t.wire_bytes(),
            SpValue::Partial(state, _count) => state.wire_bytes() + 8,
        }
    }

    fn output_bytes(&self, output: &(Group, AggOutput)) -> u64 {
        output.0.wire_bytes() + 8
    }

    /// SP-Cube never buffers a skewed group reducer-side by design; if the
    /// sampled sketch missed a skew, the group spills (slow but correct) —
    /// the resilience property the paper claims.
    fn large_group_behavior(&self) -> LargeGroupBehavior {
        LargeGroupBehavior::Spill
    }
}

/// The fallback cube round, used when the SP-Sketch is lost (the sketch
/// round failed permanently) or rejected (checksum or invariant violation
/// on the DFS copy).
///
/// Without a trustworthy sketch there is no skew knowledge and no range
/// partitioning, so this job degrades to the naive cube of Section 3.1:
/// each tuple contributes a map-side partial aggregate to every one of its
/// `2^d` c-groups, keys are hash-partitioned across all reducers, and a
/// combiner folds each map task's partials so the shuffle carries one
/// record per (task, group) rather than per (tuple, group). Slower and
/// skew-exposed — but exact, which is the point of graceful degradation:
/// the output is identical to a healthy SP-Cube run.
pub(crate) struct DegradedCubeJob {
    d: usize,
    spec: AggSpec,
    min_support: usize,
}

impl DegradedCubeJob {
    pub(crate) fn new(d: usize, cfg: &SpCubeConfig) -> DegradedCubeJob {
        DegradedCubeJob {
            d,
            spec: cfg.agg,
            min_support: cfg.min_support,
        }
    }

    fn fold<'v>(&self, values: impl Iterator<Item = &'v SpValue>) -> (AggState, u64) {
        let mut state = self.spec.init();
        let mut tuples = 0u64;
        for v in values {
            match v {
                SpValue::Partial(p, count) => {
                    state.merge(p);
                    tuples += count;
                }
                // spcheck:allow(no_panic): shuffle-protocol invariant, a code bug not corrupt data
                SpValue::Row(_) => unreachable!("degraded cube round ships only partials"),
            }
        }
        (state, tuples)
    }
}

impl MrJob for DegradedCubeJob {
    type Input = Tuple;
    type Key = Group;
    type Value = SpValue;
    type Output = (Group, AggOutput);

    fn name(&self) -> String {
        "sp-cube-degraded".into()
    }

    fn map_split(&self, ctx: &mut MapContext<'_, Group, SpValue>, split: &[Tuple]) {
        for t in split {
            for mask in Mask::full(self.d).subsets() {
                ctx.charge(1);
                let mut state = self.spec.init();
                state.update(t.measure);
                ctx.emit(Group::of_tuple(t, mask), SpValue::Partial(state, 1));
            }
        }
    }

    // Keys use the engine's default hash partitioner — no sketch, no
    // ranges, no dedicated skew reducer.

    fn has_combiner(&self) -> bool {
        true
    }

    fn combine(&self, _key: &Group, values: &mut Vec<SpValue>) {
        let (state, count) = self.fold(values.iter());
        values.clear();
        values.push(SpValue::Partial(state, count));
    }

    fn reduce(
        &self,
        ctx: &mut ReduceContext<'_, (Group, AggOutput)>,
        key: Group,
        values: Vec<SpValue>,
    ) {
        let (state, tuples) = self.fold(values.iter());
        ctx.charge(values.len() as u64);
        if tuples >= self.min_support as u64 {
            ctx.emit((key, state.finalize()));
        }
    }

    fn key_bytes(&self, key: &Group) -> u64 {
        key.wire_bytes()
    }

    fn value_bytes(&self, value: &SpValue) -> u64 {
        match value {
            SpValue::Row(t) => t.wire_bytes(),
            SpValue::Partial(state, _count) => state.wire_bytes() + 8,
        }
    }

    fn output_bytes(&self, output: &(Group, AggOutput)) -> u64 {
        output.0.wire_bytes() + 8
    }

    fn large_group_behavior(&self) -> LargeGroupBehavior {
        LargeGroupBehavior::Spill
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::build_exact_sketch;
    use spcube_common::{Relation, Schema, Value};
    use spcube_mapreduce::{run_job, ClusterConfig};

    /// The running example of Section 5.1: verify the mapper's anchor
    /// behaviour on a relation where (*,*,*) is skewed.
    #[test]
    fn mapper_aggregates_skews_and_ships_anchors() {
        let mut rel =
            Relation::empty(Schema::new(["name", "city", "year"], "sales").expect("schema"));
        for i in 0..100usize {
            rel.push_row(
                vec![
                    Value::str(if i % 2 == 0 { "laptop" } else { "printer" }),
                    Value::str(["Rome", "Paris"][i % 2]),
                    Value::Int(2010 + (i % 3) as i64),
                ],
                1.0,
            );
        }
        let cluster = ClusterConfig::new(4, 30); // apex (100 tuples) skewed
        let sketch = build_exact_sketch(&rel, &cluster);
        assert!(sketch.is_skewed_group(&Group::apex()));

        let cfg = SpCubeConfig::new(AggSpec::Count);
        let job = SpCubeJob::new(&sketch, 3, &cfg);
        let res = run_job(&cluster, &job, rel.tuples(), cluster.machines + 1).expect("run");

        // Reducer 0 must produce the apex group with the exact total count.
        let apex = res.outputs[0]
            .iter()
            .find(|(g, _)| *g == Group::apex())
            .expect("apex computed by the skew reducer");
        assert_eq!(apex.1, AggOutput::Number(100.0));

        // Raw rows shipped are bounded by d emissions per tuple.
        assert!(res.metrics.map_output_records <= 100 * 4 + 64);
    }

    #[test]
    fn partitioner_routes_skews_to_reducer_zero() {
        let mut rel = Relation::empty(Schema::synthetic(2));
        for i in 0..50 {
            rel.push_row(vec![Value::Int(1), Value::Int(i)], 1.0);
        }
        let cluster = ClusterConfig::new(3, 10);
        let sketch = build_exact_sketch(&rel, &cluster);
        let cfg = SpCubeConfig::new(AggSpec::Count);
        let job = SpCubeJob::new(&sketch, 2, &cfg);
        // (1, *) has 50 > 10 tuples: skewed.
        let skewed_key = Group::new(spcube_common::Mask(0b01), vec![Value::Int(1)]);
        assert_eq!(job.partition(&skewed_key, 4), 0);
        // A full-cuboid singleton is not skewed: range reducers 1..=3.
        let normal = Group::new(
            spcube_common::Mask(0b11),
            vec![Value::Int(1), Value::Int(7)],
        );
        let p = job.partition(&normal, 4);
        assert!((1..4).contains(&p));
    }
}
