//! Per-cuboid sketch nodes.

use std::collections::BTreeSet;

use spcube_common::{Mask, Value};

/// One cuboid's entry in the SP-Sketch: its skewed group keys (the paper
/// describes a hash table; we use an ordered set so the serialized sketch
/// is byte-deterministic, and lookups on the small per-cuboid skew sets
/// are just as fast) and its `k-1` sorted partition elements.
#[derive(Debug, Clone)]
pub struct SketchNode {
    mask: Mask,
    skews: BTreeSet<Box<[Value]>>,
    /// Sorted ascending; `partition_of` is a binary search over them.
    partition_elements: Vec<Box<[Value]>>,
}

impl SketchNode {
    /// Empty node for a cuboid.
    pub fn new(mask: Mask) -> SketchNode {
        SketchNode {
            mask,
            skews: BTreeSet::new(),
            partition_elements: Vec::new(),
        }
    }

    /// The cuboid this node describes.
    pub fn mask(&self) -> Mask {
        self.mask
    }

    /// Record a skewed group key.
    pub fn add_skew(&mut self, key: Box<[Value]>) {
        debug_assert_eq!(key.len(), self.mask.arity() as usize);
        self.skews.insert(key);
    }

    /// Install the partition elements (must be sorted ascending).
    pub fn set_partition_elements(&mut self, elements: Vec<Box<[Value]>>) {
        debug_assert!(
            elements.windows(2).all(|w| w[0] <= w[1]),
            "elements must be sorted"
        );
        self.partition_elements = elements;
    }

    /// Install partition elements without the sortedness debug-check. Used
    /// by the deserializer, whose input is untrusted by definition;
    /// [`SpSketch::validate`](super::SpSketch::validate) re-checks order.
    pub(crate) fn set_partition_elements_unchecked(&mut self, elements: Vec<Box<[Value]>>) {
        self.partition_elements = elements;
    }

    /// Whether `key` is a recorded skewed group.
    #[inline]
    pub fn is_skewed(&self, key: &[Value]) -> bool {
        !self.skews.is_empty() && self.skews.contains(key)
    }

    /// Range index of `key` among the partition elements: the number of
    /// elements strictly smaller than `key`. With elements `t_1 <= … <=
    /// t_{k-1}` this sends `key <= t_1` to range 0 and `t_i < key <=
    /// t_{i+1}` to range `i` — Definition 4.1's split. Equal projected keys
    /// (i.e. one c-group) always share a range.
    #[inline]
    pub fn partition_of(&self, key: &[Value]) -> usize {
        self.partition_elements
            .partition_point(|e| e.as_ref() < key)
    }

    /// Number of skewed groups recorded.
    pub fn skew_count(&self) -> usize {
        self.skews.len()
    }

    /// Iterate the recorded skew keys (unordered).
    pub fn skews(&self) -> impl Iterator<Item = &[Value]> {
        self.skews.iter().map(|k| k.as_ref())
    }

    /// The partition elements.
    pub fn partition_elements(&self) -> &[Box<[Value]>] {
        &self.partition_elements
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vals: &[i64]) -> Box<[Value]> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn skew_set_membership() {
        let mut n = SketchNode::new(Mask(0b11));
        n.add_skew(key(&[1, 2]));
        assert!(n.is_skewed(&key(&[1, 2])));
        assert!(!n.is_skewed(&key(&[2, 1])));
        assert_eq!(n.skew_count(), 1);
        // Duplicate insertion is idempotent.
        n.add_skew(key(&[1, 2]));
        assert_eq!(n.skew_count(), 1);
    }

    #[test]
    fn partition_of_with_duplicate_elements() {
        // A heavy key may occupy several partition positions; equal keys
        // still go to one range (the first with that boundary).
        let mut n = SketchNode::new(Mask(0b1));
        n.set_partition_elements(vec![key(&[5]), key(&[5]), key(&[9])]);
        assert_eq!(n.partition_of(&key(&[4])), 0);
        assert_eq!(n.partition_of(&key(&[5])), 0);
        assert_eq!(n.partition_of(&key(&[6])), 2);
        assert_eq!(n.partition_of(&key(&[9])), 2);
        assert_eq!(n.partition_of(&key(&[10])), 3);
    }

    #[test]
    fn empty_node_everything_in_range_zero() {
        let n = SketchNode::new(Mask(0b1));
        assert_eq!(n.partition_of(&key(&[123])), 0);
        assert!(!n.is_skewed(&key(&[123])));
    }

    #[test]
    fn apex_node_empty_key() {
        let mut n = SketchNode::new(Mask::EMPTY);
        n.add_skew(Box::new([]));
        assert!(n.is_skewed(&[]));
        assert_eq!(n.partition_of(&[]), 0);
    }
}
