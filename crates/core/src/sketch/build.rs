//! Sketch construction: the exact ("utopian") builder and the sampled
//! MapReduce builder of Algorithm 2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spcube_agg::{AggSpec, AggState};
use spcube_common::{Mask, Relation, Result, Tuple, Value};
use spcube_cubealg::{buc_from, BucConfig};
use spcube_mapreduce::{run_job, ClusterConfig, JobMetrics, MapContext, MrJob, ReduceContext};

use super::node::SketchNode;
use super::SpSketch;

/// How a cuboid's partition elements are chosen from the (sampled) tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Balance the tuples that will actually be *routed* to each cuboid —
    /// those anchored there (first non-skewed unmarked lattice node, the
    /// same rule the mapper applies). A cuboid's ranges then receive equal
    /// work. This is our default: it realizes the paper's goal of
    /// "effectively partitioning the workload between the machines"; the
    /// literal Definition 4.1 (below) balances each cuboid's projection of
    /// *all* tuples, which mis-balances cuboids whose anchored tuples are
    /// anti-correlated with the hot ranges (hot-valued tuples are aggregated
    /// map-side and never arrive).
    Anchored,
    /// The paper's Definition 4.1, verbatim: positions `i·n/k` of
    /// `sorted(R, C)` over all tuples. Kept as an ablation.
    AllTuples,
}

/// Knobs for the sampled sketch (Algorithm 2). Defaults follow the paper:
/// sampling probability `α = ln(nk)/m`, skew threshold in the sample
/// `β = ln(nk)`.
#[derive(Debug, Clone)]
pub struct SketchConfig {
    /// RNG seed for the Bernoulli sampling (per-mapper streams are derived
    /// from it, so runs are reproducible).
    pub seed: u64,
    /// Override `α` (clamped to `[0, 1]`); `None` uses `ln(nk)/m`.
    pub alpha_override: Option<f64>,
    /// Override `β`; `None` uses `ln(nk)`.
    pub beta_override: Option<f64>,
    /// Partition-element strategy (see [`PartitionStrategy`]).
    pub partition: PartitionStrategy,
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig {
            seed: 0x5b_c0de,
            alpha_override: None,
            beta_override: None,
            partition: PartitionStrategy::Anchored,
        }
    }
}

impl SketchConfig {
    /// The paper's `α = ln(nk)/m` (Proposition 4.4), clamped to `[0, 1]`.
    pub fn alpha(&self, n: usize, k: usize, m: usize) -> f64 {
        self.alpha_override
            .unwrap_or_else(|| ((n * k).max(2) as f64).ln() / m as f64)
            .clamp(0.0, 1.0)
    }

    /// The paper's `β = ln(nk)` (Section 4.2).
    pub fn beta(&self, n: usize, k: usize) -> f64 {
        self.beta_override
            .unwrap_or_else(|| ((n * k).max(2) as f64).ln())
    }
}

/// Build a sketch from a set of tuples: skews are groups whose tuple count
/// strictly exceeds `skew_threshold`; partition elements are the projected
/// keys at positions `i·n'/k` of each cuboid's sorted order.
///
/// Used with the full relation and `threshold = m` for the exact sketch,
/// and with the sample and `threshold = β` inside Algorithm 2's reducer.
pub fn build_sketch_from(tuples: &[&Tuple], d: usize, k: usize, skew_threshold: f64) -> SpSketch {
    build_sketch_with(tuples, d, k, skew_threshold, PartitionStrategy::Anchored)
}

/// [`build_sketch_from`] with an explicit partition-element strategy.
pub fn build_sketch_with(
    tuples: &[&Tuple],
    d: usize,
    k: usize,
    skew_threshold: f64,
    partition: PartitionStrategy,
) -> SpSketch {
    let mut nodes: Vec<SketchNode> = (0..(1u32 << d)).map(|m| SketchNode::new(Mask(m))).collect();

    // Skews: iceberg BUC with count — only partitions larger than the
    // threshold can contain (or be) skewed groups, so min_support prunes
    // the rest and the scan is near-linear for realistic thresholds.
    let min_support = (skew_threshold.floor() as usize + 1).max(1);
    let mut refs: Vec<&Tuple> = tuples.to_vec();
    buc_from(
        &mut refs,
        d,
        Mask::EMPTY,
        AggSpec::Count,
        &BucConfig { min_support },
        &mut |g, state| {
            if let AggState::Count(c) = state {
                if c as f64 > skew_threshold {
                    nodes[g.mask.0 as usize].add_skew(g.key);
                }
            }
        },
    );

    // Partition elements: k-1 positions per cuboid in sorted order.
    let n = tuples.len();
    if n > 0 && k > 1 {
        match partition {
            PartitionStrategy::AllTuples => {
                let mut sorted: Vec<&Tuple> = tuples.to_vec();
                for mask in (0..(1u32 << d)).map(Mask) {
                    sorted.sort_by(|a, b| spcube_common::order::cmp_under_mask(a, b, mask));
                    set_elements(&mut nodes[mask.0 as usize], &sorted, mask, k);
                }
            }
            PartitionStrategy::Anchored => {
                // Replay the mapper's anchor walk (Algorithm 3) over the
                // sample, using the just-computed skew sets, and balance
                // each cuboid over the tuples it would actually receive.
                let bfs = spcube_lattice::BfsOrder::new(d);
                let mut buckets: Vec<Vec<&Tuple>> = vec![Vec::new(); 1usize << d];
                for &t in tuples {
                    let mut lat = spcube_lattice::TupleLattice::new(t, &bfs);
                    let mut rank = 0u32;
                    while let Some((mask, at)) = lat.next_unmarked(rank) {
                        rank = at;
                        let key = t.project(mask);
                        if nodes[mask.0 as usize].is_skewed(&key) {
                            lat.mark(mask);
                        } else {
                            buckets[mask.0 as usize].push(t);
                            lat.mark_with_ancestors(mask);
                        }
                    }
                }
                // A bucket much smaller than ~2 samples per range carries
                // more sampling noise than signal; fall back to Definition
                // 4.1's all-tuples elements for those cuboids so every
                // cuboid always has usable boundaries.
                let min_bucket = 2 * k;
                let mut all_sorted: Vec<&Tuple> = tuples.to_vec();
                for mask in (0..(1u32 << d)).map(Mask) {
                    let bucket = &mut buckets[mask.0 as usize];
                    if bucket.len() >= min_bucket {
                        bucket.sort_by(|a, b| spcube_common::order::cmp_under_mask(a, b, mask));
                        set_elements(&mut nodes[mask.0 as usize], bucket, mask, k);
                    } else {
                        all_sorted.sort_by(|a, b| spcube_common::order::cmp_under_mask(a, b, mask));
                        set_elements(&mut nodes[mask.0 as usize], &all_sorted, mask, k);
                    }
                }
            }
        }
    }

    SpSketch::new(d, k, nodes)
}

fn set_elements(node: &mut SketchNode, sorted: &[&Tuple], mask: Mask, k: usize) {
    let n = sorted.len();
    if n == 0 {
        return;
    }
    let elements: Vec<Box<[Value]>> = (1..k)
        .map(|i| (i * n) / k)
        .filter(|&idx| idx < n)
        .map(|idx| sorted[idx].project(mask).into_boxed_slice())
        .collect();
    node.set_partition_elements(elements);
}

/// The exact ("utopian") SP-Sketch of Section 4.2: skews and partition
/// elements computed from the full relation with the true threshold `m`.
/// Too expensive for production (it sorts `R` per cuboid) but the ground
/// truth the sampled sketch is validated against.
pub fn build_exact_sketch(rel: &Relation, cluster: &ClusterConfig) -> SpSketch {
    let refs: Vec<&Tuple> = rel.tuples().iter().collect();
    build_sketch_from(
        &refs,
        rel.arity(),
        cluster.machines,
        cluster.skew_threshold() as f64,
    )
}

/// Algorithm 2: the sampled sketch as a MapReduce round. Mappers sample
/// each tuple independently with probability `α`; the single reducer runs
/// the in-memory builder over the sample with threshold `β`.
///
/// Returns the sketch and the round's metrics (the sample traffic and the
/// sketch-build time are part of SP-Cube's reported cost).
pub fn build_sampled_sketch(
    rel: &Relation,
    cluster: &ClusterConfig,
    cfg: &SketchConfig,
) -> Result<(SpSketch, JobMetrics)> {
    let n = rel.len();
    let k = cluster.machines;
    let m = cluster.skew_threshold();
    let job = SketchJob {
        d: rel.arity(),
        k,
        alpha: cfg.alpha(n, k, m),
        beta: cfg.beta(n, k),
        seed: cfg.seed,
        partition: cfg.partition,
    };
    let mut result = run_job(cluster, &job, rel.tuples(), 1)?;
    // An empty sample (tiny or empty relation) never invokes the reducer;
    // fall back to the empty sketch in that case.
    let sketch = result
        .outputs
        .pop()
        .and_then(|mut o| o.pop())
        .unwrap_or_else(|| build_sketch_from(&[], rel.arity(), k, job.beta));
    Ok((sketch, result.metrics))
}

/// The MapReduce job of Algorithm 2.
struct SketchJob {
    d: usize,
    k: usize,
    alpha: f64,
    beta: f64,
    seed: u64,
    partition: PartitionStrategy,
}

impl MrJob for SketchJob {
    type Input = Tuple;
    type Key = u8;
    type Value = Tuple;
    type Output = SpSketch;

    fn name(&self) -> String {
        "sp-sketch".into()
    }

    fn map_split(&self, ctx: &mut MapContext<'_, u8, Tuple>, split: &[Tuple]) {
        // Per-task RNG stream: deterministic and independent across tasks.
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (ctx.task() as u64).wrapping_mul(0x9e37_79b9));
        for t in split {
            ctx.charge(1);
            if rng.gen::<f64>() <= self.alpha {
                ctx.emit(0, t.clone());
            }
        }
    }

    fn reduce(&self, ctx: &mut ReduceContext<'_, SpSketch>, _key: u8, values: Vec<Tuple>) {
        let refs: Vec<&Tuple> = values.iter().collect();
        ctx.charge(refs.len() as u64 * (1u64 << self.d));
        ctx.emit(build_sketch_with(
            &refs,
            self.d,
            self.k,
            self.beta,
            self.partition,
        ));
    }

    fn key_bytes(&self, _key: &u8) -> u64 {
        1
    }

    fn value_bytes(&self, value: &Tuple) -> u64 {
        value.wire_bytes()
    }

    fn output_bytes(&self, output: &SpSketch) -> u64 {
        output.serialized_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcube_common::Schema;

    /// n tuples; value `v` in dim 0 occurs `hot` times, the rest distinct.
    fn skewed_rel(n: usize, hot: usize) -> Relation {
        let mut r = Relation::empty(Schema::synthetic(2));
        for i in 0..n {
            let a = if i < hot { 1 } else { 1000 + i as i64 };
            r.push_row(vec![Value::Int(a), Value::Int(i as i64)], 1.0);
        }
        r
    }

    #[test]
    fn exact_sketch_finds_planted_skew() {
        let rel = skewed_rel(1000, 300);
        let cluster = ClusterConfig::new(10, 100); // m = 100 < 300
        let s = build_exact_sketch(&rel, &cluster);
        assert!(s.is_skewed(Mask(0b01), &[Value::Int(1)]));
        // The apex has all 1000 tuples > m.
        assert!(s.is_skewed(Mask::EMPTY, &[]));
        // A cold value is not skewed.
        assert!(!s.is_skewed(Mask(0b01), &[Value::Int(1500)]));
        // Full-cuboid groups are all singletons except none: (1, i) occurs once.
        assert!(!s.is_skewed(Mask(0b11), &[Value::Int(1), Value::Int(5)]));
    }

    #[test]
    fn all_tuples_partitioning_balances_each_cuboid() {
        // Proposition 4.2(2) for the literal Definition 4.1 strategy:
        // omitting skewed members, partitions of each cuboid's projection
        // of the whole relation are O(m).
        let rel = skewed_rel(1000, 300);
        let k = 10;
        let refs: Vec<&Tuple> = rel.tuples().iter().collect();
        let s = build_sketch_with(&refs, 2, k, 100.0, PartitionStrategy::AllTuples);
        for mask in (0..4u32).map(Mask) {
            let mut counts = vec![0usize; k];
            for t in rel.tuples() {
                let key = t.project(mask);
                if !s.is_skewed(mask, &key) {
                    counts[s.partition_of(mask, &key)] += 1;
                }
            }
            // Each partition holds at most ~n/k plus one group's slack.
            for &c in &counts {
                assert!(c <= 2 * (rel.len() / k) + 1, "mask {mask:?}: {counts:?}");
            }
        }
    }

    #[test]
    fn anchored_partitioning_balances_routed_tuples() {
        // The default strategy balances what each cuboid actually
        // *receives*: replay the anchor walk over the full relation and
        // check that every cuboid's routed tuples spread across ranges.
        use spcube_lattice::{BfsOrder, TupleLattice};
        let rel = skewed_rel(1000, 300);
        let k = 10;
        let cluster = ClusterConfig::new(k, 100);
        let s = build_exact_sketch(&rel, &cluster);
        let bfs = BfsOrder::new(2);
        let mut routed = vec![vec![0usize; k]; 4];
        for t in rel.tuples() {
            let mut lat = TupleLattice::new(t, &bfs);
            let mut rank = 0u32;
            while let Some((mask, at)) = lat.next_unmarked(rank) {
                rank = at;
                let key = t.project(mask);
                if s.is_skewed(mask, &key) {
                    lat.mark(mask);
                } else {
                    routed[mask.0 as usize][s.partition_of(mask, &key)] += 1;
                    lat.mark_with_ancestors(mask);
                }
            }
        }
        for (mask, counts) in routed.iter().enumerate() {
            let total: usize = counts.iter().sum();
            if total < k {
                continue; // nothing meaningful routed to this cuboid
            }
            let max = *counts.iter().max().unwrap();
            assert!(
                max <= 2 * total / k + 2,
                "mask {mask:b}: routed partitions unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn sampled_with_alpha_one_matches_exact() {
        let rel = skewed_rel(500, 200);
        let cluster = ClusterConfig::new(5, 100);
        let cfg = SketchConfig {
            alpha_override: Some(1.0),
            beta_override: Some(cluster.skew_threshold() as f64),
            ..Default::default()
        };
        let (sampled, _m) = build_sampled_sketch(&rel, &cluster, &cfg).unwrap();
        let exact = build_exact_sketch(&rel, &cluster);
        for mask in (0..4u32).map(Mask) {
            let mut sk_s: Vec<_> = sampled.node(mask).skews().collect();
            let mut sk_e: Vec<_> = exact.node(mask).skews().collect();
            sk_s.sort();
            sk_e.sort();
            assert_eq!(sk_s, sk_e, "mask {mask:?}");
        }
    }

    #[test]
    fn sampled_sketch_detects_big_skews_with_default_parameters() {
        // Prop 4.5 in miniature: a group 5x over the threshold is found.
        let n = 20_000;
        let rel = skewed_rel(n, 5_000);
        let cluster = ClusterConfig::new(20, 1000); // m = n/k = 1000
        let (s, metrics) = build_sampled_sketch(&rel, &cluster, &SketchConfig::default()).unwrap();
        assert!(s.is_skewed(Mask(0b01), &[Value::Int(1)]));
        assert!(s.is_skewed(Mask::EMPTY, &[]));
        // Sample is small: O(m ln(nk))-ish records, far below n.
        assert!(metrics.map_output_records < (n / 2) as u64);
    }

    #[test]
    fn sample_size_is_near_alpha_n() {
        // Prop 4.4: sample size concentrates around α·n = ln(nk)/m · n.
        let n = 50_000;
        let rel = skewed_rel(n, 0);
        let cluster = ClusterConfig::new(10, 5000);
        let cfg = SketchConfig::default();
        let alpha = cfg.alpha(n, 10, 5000);
        let (_s, metrics) = build_sampled_sketch(&rel, &cluster, &cfg).unwrap();
        let expect = alpha * n as f64;
        let got = metrics.map_output_records as f64;
        assert!(
            got > expect * 0.5 && got < expect * 1.5,
            "got {got}, expected ~{expect}"
        );
    }

    #[test]
    fn sketch_is_small_relative_to_input() {
        // The paper reports sketches orders of magnitude below the input.
        let rel = skewed_rel(20_000, 4_000);
        let cluster = ClusterConfig::new(20, 1000);
        let (s, _) = build_sampled_sketch(&rel, &cluster, &SketchConfig::default()).unwrap();
        assert!(s.serialized_bytes() * 20 < rel.wire_bytes());
    }

    #[test]
    fn empty_relation_builds_empty_sketch() {
        let rel = Relation::empty(Schema::synthetic(2));
        let cluster = ClusterConfig::new(4, 10);
        let (s, _) = build_sampled_sketch(&rel, &cluster, &SketchConfig::default()).unwrap();
        assert_eq!(s.skew_count(), 0);
        assert_eq!(s.partition_of(Mask(0b01), &[Value::Int(1)]), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let rel = skewed_rel(5_000, 1_000);
        let cluster = ClusterConfig::new(10, 200);
        let cfg = SketchConfig::default();
        let (a, _) = build_sampled_sketch(&rel, &cluster, &cfg).unwrap();
        let (b, _) = build_sampled_sketch(&rel, &cluster, &cfg).unwrap();
        assert_eq!(
            a.to_bytes().expect("encode a"),
            b.to_bytes().expect("encode b")
        );
    }
}
