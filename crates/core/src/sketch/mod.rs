//! The Skews-and-Partitions Sketch (Section 4).
//!
//! For every cuboid `C` the sketch records:
//!
//! * `skews(C)` — the skewed c-groups of `C` (groups with more than `m`
//!   tuples, Definition 2.7), and
//! * `partition_elements(C)` — `k-1` projected keys splitting
//!   `sorted(R, C)` into `k` ranges of equal size (Definition 4.1).
//!
//! Proposition 4.2 gives the two properties SP-Cube relies on: all tuples
//! of a non-skewed group land in one partition (their projections compare
//! identically against every element), and — skewed members excluded —
//! every partition holds `O(m)` tuples.
//!
//! The sketch is independent of the aggregate function, so one sketch can
//! serve many cube computations over the same relation.
//!
//! # Wire format
//!
//! The sketch travels through the DFS to every machine, so it is encoded
//! in a compact self-checking binary format: the magic `SPSK1`, `d` and
//! `k` as little-endian `u32`, each cuboid's skew keys and partition
//! elements (values tagged `0` = 8-byte integer, `1` = length-prefixed
//! UTF-8), and a trailing 64-bit FNV-1a checksum of everything before it.
//! [`SpSketch::from_bytes`] rejects any blob whose checksum does not match
//! — a single flipped bit on the DFS is detected, letting the SP-Cube
//! driver fall back instead of partitioning with garbage. On top of the
//! checksum, [`SpSketch::validate`] checks the *semantic* invariants a
//! correct builder guarantees (sorted partition elements, upward-closed
//! skew sets), guarding against a buggy or stale sketch that is
//! bytes-clean.

mod build;
mod node;

pub use build::{
    build_exact_sketch, build_sampled_sketch, build_sketch_from, build_sketch_with,
    PartitionStrategy, SketchConfig,
};
pub use node::SketchNode;

use spcube_common::codec::{checked_body, put_len, put_value, seal, Reader};
use spcube_common::{Error, Group, Mask, Result, Value};

/// The SP-Sketch: one [`SketchNode`] per cuboid, indexed by mask.
#[derive(Debug, Clone)]
pub struct SpSketch {
    d: usize,
    k: usize,
    nodes: Vec<SketchNode>,
}

/// Leading magic of a serialized sketch (version 1 of the wire format).
const MAGIC: &[u8; 5] = b"SPSK1";

impl SpSketch {
    /// Assemble a sketch from per-cuboid nodes. `nodes[mask.0]` must be the
    /// node for `mask`.
    pub fn new(d: usize, k: usize, nodes: Vec<SketchNode>) -> SpSketch {
        assert_eq!(nodes.len(), 1usize << d, "need one node per cuboid");
        SpSketch { d, k, nodes }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.d
    }

    /// Number of machines the partitioning targets.
    pub fn machines(&self) -> usize {
        self.k
    }

    /// The node for one cuboid.
    pub fn node(&self, mask: Mask) -> &SketchNode {
        &self.nodes[mask.0 as usize]
    }

    /// Whether the c-group with `key` in cuboid `mask` is recorded as
    /// skewed. This is the mapper's skew test (Algorithm 3, line 6),
    /// implemented as a hash lookup as described in Section 5.
    #[inline]
    pub fn is_skewed(&self, mask: Mask, key: &[Value]) -> bool {
        self.nodes[mask.0 as usize].is_skewed(key)
    }

    /// [`SpSketch::is_skewed`] for a [`Group`].
    #[inline]
    pub fn is_skewed_group(&self, g: &Group) -> bool {
        self.is_skewed(g.mask, &g.key)
    }

    /// Which of the `k` ranges of cuboid `mask` the key belongs to
    /// (0-based). All keys of one c-group map to the same range regardless
    /// of sample quality, because they are equal as projected keys.
    #[inline]
    pub fn partition_of(&self, mask: Mask, key: &[Value]) -> usize {
        self.nodes[mask.0 as usize].partition_of(key)
    }

    /// Total number of skewed groups recorded across all cuboids.
    pub fn skew_count(&self) -> usize {
        self.nodes.iter().map(SketchNode::skew_count).sum()
    }

    /// Serialized size in bytes — the measure reported in Figures 5c/6c of
    /// the paper. Computed from the encoding actually shipped through the
    /// DFS.
    pub fn serialized_bytes(&self) -> u64 {
        self.to_bytes().map_or(0, |b| b.len() as u64)
    }

    /// Serialize for DFS distribution (see the wire format in the module
    /// docs). Deterministic: equal sketches produce equal bytes. Fails
    /// only when a collection exceeds the format's 32-bit length fields.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_len(&mut out, self.d)?;
        put_len(&mut out, self.k)?;
        for node in &self.nodes {
            put_len(&mut out, node.skew_count())?;
            for key in node.skews() {
                for v in key {
                    put_value(&mut out, v)?;
                }
            }
            let elements = node.partition_elements();
            put_len(&mut out, elements.len())?;
            for e in elements {
                for v in e.iter() {
                    put_value(&mut out, v)?;
                }
            }
        }
        seal(&mut out);
        Ok(out)
    }

    /// Deserialize from DFS bytes, verifying the trailing checksum before
    /// anything else — corrupted blobs fail with a typed [`Error::Corrupt`]
    /// rather than silently mis-partitioning the cube round. Safe on
    /// arbitrary bytes: every read is bounds-checked and every declared
    /// count is validated against the bytes actually present.
    pub fn from_bytes(bytes: &[u8]) -> Result<SpSketch> {
        let body = checked_body(bytes, "sketch")?;
        let mut r = Reader::labeled(body, "sketch");
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(r.corrupt("bad sketch magic"));
        }
        let d = r.u32()? as usize;
        let k = r.u32()? as usize;
        if d > Mask::MAX_DIMS {
            return Err(r.corrupt(format!(
                "declares {d} dimensions, max is {}",
                Mask::MAX_DIMS
            )));
        }
        let mut nodes = Vec::with_capacity(1usize << d);
        for m in 0..(1u32 << d) {
            let mask = Mask(m);
            let arity = mask.arity() as usize;
            let mut node = SketchNode::new(mask);
            let n_skews = r.u32()? as usize;
            // A key needs at least one tagged value per arity slot (or is
            // empty for the apex); bound the declared count by the bytes
            // left so a forged header cannot drive a huge allocation.
            r.check_count(n_skews, arity.saturating_mul(5), "skew keys")?;
            for _ in 0..n_skews {
                let mut key = Vec::with_capacity(arity);
                for _ in 0..arity {
                    key.push(r.value()?);
                }
                node.add_skew(key.into_boxed_slice());
            }
            let n_elements = r.u32()? as usize;
            r.check_count(n_elements, arity.saturating_mul(5), "partition elements")?;
            let mut elements = Vec::with_capacity(n_elements);
            for _ in 0..n_elements {
                let mut e = Vec::with_capacity(arity);
                for _ in 0..arity {
                    e.push(r.value()?);
                }
                elements.push(e.into_boxed_slice());
            }
            // Order is an untrusted input here; `validate` re-checks it.
            node.set_partition_elements_unchecked(elements);
            nodes.push(node);
        }
        if !r.is_exhausted() {
            return Err(r.corrupt("trailing bytes after sketch"));
        }
        Ok(SpSketch { d, k, nodes })
    }

    /// Check the semantic invariants every correctly-built sketch holds:
    ///
    /// 1. each cuboid's partition elements are sorted ascending (otherwise
    ///    [`SpSketch::partition_of`]'s binary search routes one c-group to
    ///    several reducers and the cube output is wrong), and
    /// 2. skew sets are *upward-closed*: a group skewed at cuboid `C`
    ///    projects to a group with at least as many tuples in every
    ///    coarser cuboid, so its projection must be recorded as skewed
    ///    there too (otherwise the mapper's anchor walk can anchor a
    ///    skewed group and flood one reducer — the failure SP-Cube exists
    ///    to prevent).
    ///
    /// The SP-Cube driver runs this on the sketch read back from the DFS
    /// and falls back to hash partitioning when it fails.
    pub fn validate(&self) -> Result<()> {
        for node in &self.nodes {
            let mask = node.mask();
            let arity = mask.arity() as usize;
            let elements = node.partition_elements();
            for e in elements {
                if e.len() != arity {
                    return Err(Error::Parse(format!(
                        "sketch node {mask}: partition element of arity {}, expected {arity}",
                        e.len()
                    )));
                }
            }
            if let Some(w) = elements.windows(2).find(|w| w[0] > w[1]) {
                return Err(Error::Parse(format!(
                    "sketch node {mask}: partition elements out of order ({:?} > {:?})",
                    w[0], w[1]
                )));
            }
            for key in node.skews() {
                if key.len() != arity {
                    return Err(Error::Parse(format!(
                        "sketch node {mask}: skew key of arity {}, expected {arity}",
                        key.len()
                    )));
                }
                for child in mask.children() {
                    let proj: Vec<Value> = mask
                        .dims()
                        .zip(key)
                        .filter(|(dim, _)| child.contains(*dim))
                        .map(|(_, v)| v.clone())
                        .collect();
                    if !self.nodes[child.0 as usize].is_skewed(&proj) {
                        return Err(Error::Parse(format!(
                            "sketch skews not upward-closed: {key:?} is skewed at {mask} \
                             but its projection {proj:?} is not skewed at {child}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sketch() -> SpSketch {
        let mut nodes: Vec<SketchNode> = (0..4u32).map(|m| SketchNode::new(Mask(m))).collect();
        // Upward-closed: the skewed group at m01 projects to the apex.
        nodes[0b00].add_skew(Box::new([]));
        nodes[0b01].add_skew(vec![Value::Int(7)].into_boxed_slice());
        nodes[0b01].set_partition_elements(vec![
            vec![Value::Int(3)].into_boxed_slice(),
            vec![Value::Int(9)].into_boxed_slice(),
        ]);
        nodes[0b10].set_partition_elements(vec![
            vec![Value::str("cam")].into_boxed_slice(),
            vec![Value::str("tv")].into_boxed_slice(),
        ]);
        SpSketch::new(2, 3, nodes)
    }

    #[test]
    fn skew_lookup() {
        let s = tiny_sketch();
        assert!(s.is_skewed(Mask(0b01), &[Value::Int(7)]));
        assert!(!s.is_skewed(Mask(0b01), &[Value::Int(8)]));
        assert!(!s.is_skewed(Mask(0b10), &[Value::Int(7)]));
        assert_eq!(s.skew_count(), 2);
    }

    #[test]
    fn partition_lookup_ranges() {
        let s = tiny_sketch();
        // elements: [3], [9] -> ranges (-inf,3], (3,9], (9,inf)
        assert_eq!(s.partition_of(Mask(0b01), &[Value::Int(1)]), 0);
        assert_eq!(s.partition_of(Mask(0b01), &[Value::Int(3)]), 0);
        assert_eq!(s.partition_of(Mask(0b01), &[Value::Int(4)]), 1);
        assert_eq!(s.partition_of(Mask(0b01), &[Value::Int(9)]), 1);
        assert_eq!(s.partition_of(Mask(0b01), &[Value::Int(10)]), 2);
        // Cuboid without elements: everything range 0.
        assert_eq!(
            s.partition_of(Mask(0b11), &[Value::Int(10), Value::Int(1)]),
            0
        );
    }

    #[test]
    fn binary_round_trip() {
        let s = tiny_sketch();
        let bytes = s.to_bytes().expect("encode");
        assert_eq!(&bytes[..5], MAGIC);
        assert_eq!(bytes.len() as u64, s.serialized_bytes());
        let back = SpSketch::from_bytes(&bytes).expect("decode");
        assert_eq!(back.dims(), 2);
        assert_eq!(back.machines(), 3);
        assert!(back.is_skewed(Mask(0b01), &[Value::Int(7)]));
        assert_eq!(back.partition_of(Mask(0b01), &[Value::Int(4)]), 1);
        assert_eq!(back.partition_of(Mask(0b10), &[Value::str("dvd")]), 1);
        // Deterministic encoding.
        assert_eq!(back.to_bytes().expect("re-encode"), bytes);
        assert!(back.validate().is_ok());
    }

    #[test]
    fn bad_bytes_rejected() {
        assert!(SpSketch::from_bytes(b"not a sketch").is_err());
        assert!(SpSketch::from_bytes(b"").is_err());
        let good = tiny_sketch().to_bytes().expect("encode");
        // Truncation, wrong magic, trailing garbage: all rejected.
        assert!(SpSketch::from_bytes(&good[..good.len() - 1]).is_err());
        let mut wrong_magic = good.clone();
        wrong_magic[0] = b'X';
        assert!(SpSketch::from_bytes(&wrong_magic).is_err());
        let mut padded = good.clone();
        padded.push(0);
        assert!(SpSketch::from_bytes(&padded).is_err());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // The checksum (or, for flips inside the checksum itself, the
        // comparison) catches any one-bit corruption anywhere in the blob.
        let good = tiny_sketch().to_bytes().expect("encode");
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            assert!(
                SpSketch::from_bytes(&bad).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn validate_rejects_unsorted_partition_elements() {
        let mut s = tiny_sketch();
        s.nodes[0b01].set_partition_elements_unchecked(vec![
            vec![Value::Int(9)].into_boxed_slice(),
            vec![Value::Int(3)].into_boxed_slice(),
        ]);
        let err = s.validate().expect_err("invalid sketch");
        assert!(err.to_string().contains("out of order"), "{err}");
    }

    #[test]
    fn validate_rejects_non_upward_closed_skews() {
        let mut nodes: Vec<SketchNode> = (0..4u32).map(|m| SketchNode::new(Mask(m))).collect();
        // Skewed at m11 but its projections are recorded nowhere.
        nodes[0b11].add_skew(vec![Value::Int(1), Value::Int(2)].into_boxed_slice());
        let s = SpSketch::new(2, 3, nodes);
        let err = s.validate().expect_err("invalid sketch");
        assert!(err.to_string().contains("upward-closed"), "{err}");
    }

    #[test]
    fn validate_accepts_built_sketches() {
        // The real builder's output must always pass its own validation.
        use spcube_common::{Relation, Schema};
        let mut rel = Relation::empty(Schema::synthetic(2));
        for i in 0..400 {
            let a = if i < 200 { 1 } else { i as i64 };
            rel.push_row(vec![Value::Int(a), Value::Int(i as i64 % 7)], 1.0);
        }
        let refs: Vec<&spcube_common::Tuple> = rel.tuples().iter().collect();
        let s = build_sketch_from(&refs, 2, 4, 50.0);
        assert!(s.skew_count() > 0, "test needs a non-trivial sketch");
        assert!(s.validate().is_ok());
        // And it survives a DFS round trip.
        assert!(SpSketch::from_bytes(&s.to_bytes().expect("encode"))
            .expect("decode")
            .validate()
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "one node per cuboid")]
    fn wrong_node_count_panics() {
        SpSketch::new(3, 2, vec![SketchNode::new(Mask(0))]);
    }
}
