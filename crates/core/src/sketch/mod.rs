//! The Skews-and-Partitions Sketch (Section 4).
//!
//! For every cuboid `C` the sketch records:
//!
//! * `skews(C)` — the skewed c-groups of `C` (groups with more than `m`
//!   tuples, Definition 2.7), and
//! * `partition_elements(C)` — `k-1` projected keys splitting
//!   `sorted(R, C)` into `k` ranges of equal size (Definition 4.1).
//!
//! Proposition 4.2 gives the two properties SP-Cube relies on: all tuples
//! of a non-skewed group land in one partition (their projections compare
//! identically against every element), and — skewed members excluded —
//! every partition holds `O(m)` tuples.
//!
//! The sketch is independent of the aggregate function, so one sketch can
//! serve many cube computations over the same relation.

mod build;
mod node;

pub use build::{build_exact_sketch, build_sampled_sketch, build_sketch_from, build_sketch_with, PartitionStrategy, SketchConfig};
pub use node::SketchNode;

use serde::{Deserialize, Serialize};
use spcube_common::{Group, Mask, Value};

/// The SP-Sketch: one [`SketchNode`] per cuboid, indexed by mask.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpSketch {
    d: usize,
    k: usize,
    nodes: Vec<SketchNode>,
}

impl SpSketch {
    /// Assemble a sketch from per-cuboid nodes. `nodes[mask.0]` must be the
    /// node for `mask`.
    pub fn new(d: usize, k: usize, nodes: Vec<SketchNode>) -> SpSketch {
        assert_eq!(nodes.len(), 1usize << d, "need one node per cuboid");
        SpSketch { d, k, nodes }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.d
    }

    /// Number of machines the partitioning targets.
    pub fn machines(&self) -> usize {
        self.k
    }

    /// The node for one cuboid.
    pub fn node(&self, mask: Mask) -> &SketchNode {
        &self.nodes[mask.0 as usize]
    }

    /// Whether the c-group with `key` in cuboid `mask` is recorded as
    /// skewed. This is the mapper's skew test (Algorithm 3, line 6),
    /// implemented as a hash lookup as described in Section 5.
    #[inline]
    pub fn is_skewed(&self, mask: Mask, key: &[Value]) -> bool {
        self.nodes[mask.0 as usize].is_skewed(key)
    }

    /// [`SpSketch::is_skewed`] for a [`Group`].
    #[inline]
    pub fn is_skewed_group(&self, g: &Group) -> bool {
        self.is_skewed(g.mask, &g.key)
    }

    /// Which of the `k` ranges of cuboid `mask` the key belongs to
    /// (0-based). All keys of one c-group map to the same range regardless
    /// of sample quality, because they are equal as projected keys.
    #[inline]
    pub fn partition_of(&self, mask: Mask, key: &[Value]) -> usize {
        self.nodes[mask.0 as usize].partition_of(key)
    }

    /// Total number of skewed groups recorded across all cuboids.
    pub fn skew_count(&self) -> usize {
        self.nodes.iter().map(SketchNode::skew_count).sum()
    }

    /// Serialized size in bytes — the measure reported in Figures 5c/6c of
    /// the paper. Computed from the JSON encoding actually shipped through
    /// the DFS.
    pub fn serialized_bytes(&self) -> u64 {
        self.to_bytes().len() as u64
    }

    /// Serialize for DFS distribution.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("sketch serialization cannot fail")
    }

    /// Deserialize from DFS bytes.
    pub fn from_bytes(bytes: &[u8]) -> spcube_common::Result<SpSketch> {
        serde_json::from_slice(bytes)
            .map_err(|e| spcube_common::Error::Parse(format!("bad sketch: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sketch() -> SpSketch {
        let mut nodes: Vec<SketchNode> = (0..4u32).map(|m| SketchNode::new(Mask(m))).collect();
        nodes[0b01].add_skew(vec![Value::Int(7)].into_boxed_slice());
        nodes[0b01].set_partition_elements(vec![
            vec![Value::Int(3)].into_boxed_slice(),
            vec![Value::Int(9)].into_boxed_slice(),
        ]);
        SpSketch::new(2, 3, nodes)
    }

    #[test]
    fn skew_lookup() {
        let s = tiny_sketch();
        assert!(s.is_skewed(Mask(0b01), &[Value::Int(7)]));
        assert!(!s.is_skewed(Mask(0b01), &[Value::Int(8)]));
        assert!(!s.is_skewed(Mask(0b10), &[Value::Int(7)]));
        assert_eq!(s.skew_count(), 1);
    }

    #[test]
    fn partition_lookup_ranges() {
        let s = tiny_sketch();
        // elements: [3], [9] -> ranges (-inf,3], (3,9], (9,inf)
        assert_eq!(s.partition_of(Mask(0b01), &[Value::Int(1)]), 0);
        assert_eq!(s.partition_of(Mask(0b01), &[Value::Int(3)]), 0);
        assert_eq!(s.partition_of(Mask(0b01), &[Value::Int(4)]), 1);
        assert_eq!(s.partition_of(Mask(0b01), &[Value::Int(9)]), 1);
        assert_eq!(s.partition_of(Mask(0b01), &[Value::Int(10)]), 2);
        // Cuboid without elements: everything range 0.
        assert_eq!(s.partition_of(Mask(0b10), &[Value::Int(10)]), 0);
    }

    #[test]
    fn serde_round_trip() {
        let s = tiny_sketch();
        let bytes = s.to_bytes();
        assert_eq!(bytes.len() as u64, s.serialized_bytes());
        let back = SpSketch::from_bytes(&bytes).unwrap();
        assert_eq!(back.dims(), 2);
        assert_eq!(back.machines(), 3);
        assert!(back.is_skewed(Mask(0b01), &[Value::Int(7)]));
        assert_eq!(back.partition_of(Mask(0b01), &[Value::Int(4)]), 1);
    }

    #[test]
    fn bad_bytes_rejected() {
        assert!(SpSketch::from_bytes(b"not json").is_err());
    }

    #[test]
    #[should_panic(expected = "one node per cuboid")]
    fn wrong_node_count_panics() {
        SpSketch::new(3, 2, vec![SketchNode::new(Mask(0))]);
    }
}
