//! SP-Sketch and SP-Cube — the paper's contribution.
//!
//! This crate implements, on top of the `spcube-mapreduce` engine:
//!
//! * the **SP-Sketch** (Section 4): a per-cuboid summary of the skewed
//!   c-groups and of `k-1` lexicographic partition elements, in an exact
//!   ("utopian") variant and the sampled variant of Algorithm 2;
//! * the **SP-Cube algorithm** (Section 5): a two-round MapReduce cube —
//!   round 1 builds the sketch, round 2 computes the cube with map-side
//!   partial aggregation of skewed groups, sketch-driven range
//!   partitioning, anchor marking to suppress redundant traffic, and
//!   reducer-side BUC over each anchor's ancestors.
//!
//! Entry point: [`SpCube::run`] (or [`sp_cube`] for defaults).
//!
//! ```
//! use spcube_core::{sp_cube, SpCubeConfig};
//! use spcube_mapreduce::ClusterConfig;
//! use spcube_agg::AggSpec;
//! use spcube_common::{Relation, Schema, Value};
//!
//! let mut rel = Relation::empty(Schema::new(["name", "city"], "sales").unwrap());
//! rel.push_row(vec!["laptop".into(), "Rome".into()], 2000.0);
//! rel.push_row(vec!["laptop".into(), "Paris".into()], 1500.0);
//! let cluster = ClusterConfig::new(4, 10);
//! let run = sp_cube(&rel, &cluster, AggSpec::Sum).unwrap();
//! assert_eq!(run.cube.len(), 6); // distinct groups across the 4 cuboids
//! ```
// Serving-path crate: panic-free outside tests (see DESIGN.md and the
// spcheck gate). Clippy enforces the unwrap ban; spcheck covers the rest.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
// Concurrency discipline (PR 8): no mutex-wrapped scalars that should be
// atomics, and no lock guards living inside match/if-let scrutinees.
#![warn(clippy::mutex_atomic)]
#![warn(clippy::significant_drop_in_scrutinee)]

pub mod analysis;
pub mod sketch;
pub mod spcube;

pub use analysis::{forecast_cube_round, TrafficForecast};
pub use sketch::{
    build_exact_sketch, build_sampled_sketch, PartitionStrategy, SketchConfig, SketchNode, SpSketch,
};
pub use spcube::{sp_cube, SpCube, SpCubeConfig, SpCubeRun, SpCubeStoreRun};
