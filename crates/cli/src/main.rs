//! `spcube` — command-line front end for the SP-Cube reproduction.
//!
//! ```text
//! spcube generate --dataset zipf --n 100000 --seed 7 --out data.tsv
//! spcube sketch data.tsv --machines 20 [--memory M] [--exact-sketch]
//! spcube cube data.tsv --algo spcube --agg sum --machines 20 --out cube_out
//! spcube cuboid data.tsv --mask 101 --agg count
//! spcube help
//! ```
//!
//! `cube` writes one TSV per cuboid into `--out` (Section 3.1's layout)
//! and prints the run's metrics; `--algo` selects between `spcube`, `pig`
//! (MRCube), `hive`, `naive`, and `topdown`.

mod args;

use std::process::ExitCode;

use args::Args;
use spcube_agg::AggSpec;
use spcube_baselines::{hive_cube, mr_cube, naive_mr_cube, top_down_cube, HiveConfig, MrCubeConfig};
use spcube_common::{io, Error, Mask, Relation, Result};
use spcube_core::{build_exact_sketch, build_sampled_sketch, SketchConfig, SpCube, SpCubeConfig};
use spcube_cubealg::{Cube, CubeQuery};
use spcube_datagen as datagen;
use spcube_mapreduce::{ClusterConfig, RunMetrics};

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(&raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("spcube: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(raw: &[String]) -> Result<()> {
    let args = Args::parse(raw)?;
    match args.command.as_str() {
        "generate" => generate(&args),
        "sketch" => sketch(&args),
        "cube" => cube(&args),
        "cuboid" => cuboid(&args),
        "" | "help" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(Error::Config(format!("unknown command `{other}`; see `spcube help`"))),
    }
}

const HELP: &str = "\
spcube — SP-Cube data cube computation (SIGMOD'16 reproduction)

COMMANDS
  generate --dataset D --n N [--seed S] [--p P] [--dims K] --out FILE
      Write a synthetic dataset as TSV. Datasets: zipf, binomial (needs
      --p), wikipedia, usagov, retail (accepts --p as skew), apex.
  sketch FILE --machines K [--memory M] [--exact-sketch]
      Build and summarize the SP-Sketch of a TSV relation.
  cube FILE --algo A [--agg F] --machines K [--memory M]
       [--min-support S] [--out DIR]
      Compute the cube. Algorithms: spcube, pig, hive, naive, topdown.
      Aggregates: count, sum, min, max, avg, count_distinct.
  cuboid FILE --mask BITS [--agg F] [--top N]
      Compute just one cuboid view (via a full sequential cube) and print
      its largest groups.
  help
";

fn load(args: &Args) -> Result<Relation> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| Error::Config("input TSV path required".into()))?;
    io::read_tsv_file(path)
}

fn cluster_from(args: &Args, n: usize) -> Result<ClusterConfig> {
    let machines: usize = args.get_or("machines", 20)?;
    let memory: usize = args.get_or("memory", (n / machines.max(1)).max(1))?;
    Ok(ClusterConfig::new(machines, memory))
}

fn agg_from(args: &Args) -> Result<AggSpec> {
    Ok(match args.get("agg").unwrap_or("count") {
        "count" => AggSpec::Count,
        "sum" => AggSpec::Sum,
        "min" => AggSpec::Min,
        "max" => AggSpec::Max,
        "avg" => AggSpec::Avg,
        "count_distinct" => AggSpec::CountDistinct,
        other => return Err(Error::Config(format!("unknown aggregate `{other}`"))),
    })
}

fn generate(args: &Args) -> Result<()> {
    let dataset = args.require("dataset")?;
    let n: usize = args.get_or("n", 100_000)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let dims: usize = args.get_or("dims", 4)?;
    let p: f64 = args.get_or("p", 0.25)?;
    let out = args.require("out")?;
    let rel = match dataset {
        "zipf" => datagen::gen_zipf(n, dims, seed),
        "binomial" => datagen::gen_binomial(n, dims, p, seed),
        "wikipedia" => datagen::wikipedia_like(n, seed),
        "usagov" => datagen::usagov_like(n, seed),
        "retail" => datagen::retail(n, p, seed),
        "apex" => datagen::apex_only_skew(n, dims, seed),
        other => return Err(Error::Config(format!("unknown dataset `{other}`"))),
    };
    io::write_tsv_file(&rel, out)?;
    println!("wrote {} tuples ({} bytes) to {out}", rel.len(), rel.wire_bytes());
    Ok(())
}

fn sketch(args: &Args) -> Result<()> {
    let rel = load(args)?;
    let cluster = cluster_from(args, rel.len())?;
    let (sketch, round) = if args.has("exact-sketch") {
        (build_exact_sketch(&rel, &cluster), None)
    } else {
        let (s, m) = build_sampled_sketch(&rel, &cluster, &SketchConfig::default())?;
        (s, Some(m))
    };
    println!(
        "sketch over {} tuples: d = {}, k = {}, m = {}",
        rel.len(),
        rel.arity(),
        cluster.machines,
        cluster.skew_threshold()
    );
    println!("  skewed c-groups : {}", sketch.skew_count());
    println!("  serialized size : {} bytes", sketch.serialized_bytes());
    if let Some(m) = round {
        println!("  sample records  : {}", m.map_output_records);
        println!("  round time (sim): {:.2}s", m.simulated_seconds);
    }
    for mask in Mask::full(rel.arity()).subsets() {
        let node = sketch.node(mask);
        if node.skew_count() > 0 {
            println!(
                "  cuboid {:0>width$b}: {} skews",
                mask.0,
                node.skew_count(),
                width = rel.arity()
            );
        }
    }
    Ok(())
}

fn cube(args: &Args) -> Result<()> {
    let rel = load(args)?;
    let cluster = cluster_from(args, rel.len())?;
    let agg = agg_from(args)?;
    let algo = args.get("algo").unwrap_or("spcube");
    let (cube, metrics): (Cube, RunMetrics) = match algo {
        "spcube" => {
            let mut cfg = SpCubeConfig::new(agg);
            cfg.min_support = args.get_or("min-support", 1)?;
            cfg.use_exact_sketch = args.has("exact-sketch");
            let run = SpCube::run(&rel, &cluster, &cfg)?;
            println!("sketch: {} bytes, {} skews", run.sketch_bytes, run.sketch.skew_count());
            (run.cube, run.metrics)
        }
        "pig" => {
            let run = mr_cube(&rel, &cluster, &MrCubeConfig::new(agg))?;
            (run.cube, run.metrics)
        }
        "hive" => {
            let run = hive_cube(&rel, &cluster, &HiveConfig::new(agg))?;
            (run.cube, run.metrics)
        }
        "naive" => {
            let run = naive_mr_cube(&rel, &cluster, agg)?;
            (run.cube, run.metrics)
        }
        "topdown" => {
            let run = top_down_cube(&rel, &cluster, agg)?;
            (run.cube, run.metrics)
        }
        other => return Err(Error::Config(format!("unknown algorithm `{other}`"))),
    };

    println!(
        "{algo}/{}: {} c-groups in {} round(s); {:.1}s simulated; {} intermediate bytes",
        agg.name(),
        cube.len(),
        metrics.round_count(),
        metrics.total_seconds(),
        metrics.map_output_bytes()
    );
    if let Some(dir) = args.get("out") {
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::Io(format!("creating {dir}"), e))?;
        let q = CubeQuery::new(&cube, rel.arity());
        let mut failed = None;
        let paths = q.export_per_cuboid(dir, |path, body| {
            if failed.is_none() {
                if let Err(e) = std::fs::write(&path, body) {
                    failed = Some(Error::Io(format!("writing {path}"), e));
                }
            }
        });
        if let Some(e) = failed {
            return Err(e);
        }
        println!("wrote {} cuboid files under {dir}/", paths.len());
    }
    Ok(())
}

fn cuboid(args: &Args) -> Result<()> {
    let rel = load(args)?;
    let agg = agg_from(args)?;
    let mask_str = args.require("mask")?;
    let bits = u32::from_str_radix(mask_str, 2)
        .map_err(|_| Error::Config(format!("--mask `{mask_str}` is not binary")))?;
    let mask = Mask(bits);
    if !mask.is_subset_of(Mask::full(rel.arity())) {
        return Err(Error::Config(format!(
            "--mask {mask_str} has bits beyond the {}-dimensional schema",
            rel.arity()
        )));
    }
    let top_n: usize = args.get_or("top", 20)?;
    let cube = spcube_cubealg::buc(&rel, agg, &spcube_cubealg::BucConfig::default());
    let q = CubeQuery::new(&cube, rel.arity());
    println!(
        "cuboid {:0>width$b}: {} groups; top {top_n} by {}:",
        mask.0,
        q.cuboid_len(mask),
        agg.name(),
        width = rel.arity()
    );
    for (g, v) in q.top(mask, top_n) {
        println!("  {:<40} {v}", g.display(rel.arity()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(tokens: &[String]) -> Result<()> {
        run(tokens)
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn generate_sketch_cube_pipeline() {
        let dir = std::env::temp_dir().join(format!("spcube-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tsv = dir.join("data.tsv");
        let tsv_s = tsv.to_str().unwrap();

        call(&argv(&[
            "generate", "--dataset", "retail", "--n", "3000", "--p", "0.4", "--seed", "5",
            "--out", tsv_s,
        ]))
        .unwrap();
        assert!(tsv.exists());

        call(&argv(&["sketch", tsv_s, "--machines", "5", "--memory", "200"])).unwrap();

        let out = dir.join("cube");
        for algo in ["spcube", "pig", "hive", "naive", "topdown"] {
            call(&argv(&[
                "cube", tsv_s, "--algo", algo, "--agg", "sum", "--machines", "5", "--memory",
                "200", "--out", out.to_str().unwrap(),
            ]))
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
        }
        // 2^3 cuboid files written.
        assert_eq!(std::fs::read_dir(&out).unwrap().count(), 8);

        call(&argv(&["cuboid", tsv_s, "--mask", "101", "--top", "3"])).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(call(&argv(&["nope"])).is_err());
        assert!(call(&argv(&["cube"])).is_err());
        assert!(call(&argv(&["generate", "--dataset", "bogus", "--out", "/tmp/x"])).is_err());
        assert!(call(&argv(&["help"])).is_ok());
    }

    #[test]
    fn cuboid_mask_validation() {
        let dir = std::env::temp_dir().join(format!("spcube-cli-m-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tsv = dir.join("d.tsv");
        call(&argv(&[
            "generate", "--dataset", "zipf", "--n", "100", "--dims", "3", "--out",
            tsv.to_str().unwrap(),
        ]))
        .unwrap();
        // Mask with a bit beyond d=3.
        let err = call(&argv(&["cuboid", tsv.to_str().unwrap(), "--mask", "1000"])).unwrap_err();
        assert!(err.to_string().contains("beyond"));
        // Non-binary mask.
        assert!(call(&argv(&["cuboid", tsv.to_str().unwrap(), "--mask", "xyz"])).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
