//! `spcube` — command-line front end for the SP-Cube reproduction.
//!
//! ```text
//! spcube generate --dataset zipf --n 100000 --seed 7 --out data.tsv
//! spcube sketch data.tsv --machines 20 [--memory M] [--exact-sketch]
//! spcube cube data.tsv --algo spcube --agg sum --machines 20 --out cube_out
//! spcube cuboid data.tsv --mask 101 --agg count
//! spcube help
//! ```
//!
//! `cube` writes one TSV per cuboid into `--out` (Section 3.1's layout)
//! and prints the run's metrics; `--algo` selects between `spcube`, `pig`
//! (MRCube), `hive`, `naive`, and `topdown`.
//!
//! The read side of the reproduction lives behind three more commands:
//! `build-store` persists the cube as a columnar CubeStore directory,
//! `query` answers point/slice/top-k lookups against such a directory,
//! and `serve-bench` drives a concurrent query-serving benchmark.

mod args;

use std::process::ExitCode;
use std::sync::Arc;

use args::Args;
use spcube_agg::AggSpec;
use spcube_baselines::{
    hive_cube, mr_cube, naive_mr_cube, top_down_cube, HiveConfig, MrCubeConfig,
};
use spcube_bench::report::{phase_table, write_phase_csv};
use spcube_bench::serving::{
    run_serving, run_serving_under_ingest, IngestBenchConfig, ServeBenchConfig,
};
use spcube_common::{io, Error, Mask, Relation, Result, Value};
use spcube_core::{build_exact_sketch, build_sampled_sketch, SketchConfig, SpCube, SpCubeConfig};
use spcube_cubealg::{Cube, CubeQuery, CubeRead};
use spcube_cubestore::{
    ingest_batch, write_store, BlobStore, CompactionPolicy, CubeStore, DirBlobs, FaultSchedule,
    FaultyBlobs, IngestConfig, ScrubConfig, Scrubber,
};
use spcube_datagen as datagen;
use spcube_mapreduce::{ClusterConfig, Dfs, RunMetrics};
use spcube_obs::ObsHandle;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(&raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("spcube: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(raw: &[String]) -> Result<()> {
    let args = Args::parse(raw)?;
    let command = args.command.clone();
    match command.as_str() {
        "generate" => generate(&args),
        "sketch" => sketch(&args),
        "cube" => cube(&args),
        "cuboid" => cuboid(&args),
        "build-store" => build_store(&args),
        "ingest" => ingest(&args),
        "compact" => compact_store(&args),
        "scrub" => scrub_store(&args),
        "query" => query(&args),
        "serve-bench" => serve_bench(&args),
        "profile" => serve_bench(&args.with_switch("profile")),
        "" | "help" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(Error::Config(format!(
            "unknown command `{other}`; see `spcube help`"
        ))),
    }
}

const HELP: &str = "\
spcube — SP-Cube data cube computation (SIGMOD'16 reproduction)

COMMANDS
  generate --dataset D --n N [--seed S] [--p P] [--dims K] --out FILE
      Write a synthetic dataset as TSV. Datasets: zipf, binomial (needs
      --p), wikipedia, usagov, retail (accepts --p as skew), apex.
  sketch FILE --machines K [--memory M] [--exact-sketch]
      Build and summarize the SP-Sketch of a TSV relation.
  cube FILE --algo A [--agg F] --machines K [--memory M]
       [--min-support S] [--out DIR] [--trace FILE] [--metrics FILE]
      Compute the cube. Algorithms: spcube, pig, hive, naive, topdown.
      Aggregates: count, sum, min, max, avg, count_distinct.
      --trace writes the run's span/event trace as JSONL; --metrics
      writes a Prometheus-style snapshot of all instruments.
  cuboid FILE --mask BITS [--agg F] [--top N]
      Compute just one cuboid view (via a full sequential cube) and print
      its largest groups.
  build-store FILE --out DIR [--agg F] [--machines K] [--memory M]
       [--min-support S]
      Run SP-Cube and persist the cube as a columnar CubeStore directory
      (one checksummed segment per cuboid plus a manifest).
  ingest FILE --store DIR [--agg F]
      Cube the TSV batch in one cheap pass and publish it as a new delta
      layer of the incremental store under DIR (created on the first
      ingest; aggregates merge bit-exactly across layers at read time).
  compact DIR [--max-layers N]
      Fold the smallest delta layers of the store under DIR into one new
      layer when the chain exceeds N (default 4); answers are unchanged.
  scrub DIR [--check-only] [--recover FILE]
      Walk the live generation chain of the store under DIR re-verifying
      every blob checksum; quarantine bit-rot and repair segments in
      place (rollup for delta layers; BUC recompute from --recover's TSV
      for full-rebuild stores). --check-only reports without touching
      anything. Exits nonzero when corruption remains unrepaired.
  query DIR --mask BITS [--point V1,V2,..] [--slice DIM=VALUE] [--top N]
      Answer a lookup against a CubeStore directory written by
      build-store or ingest. Without --point/--slice, prints the
      cuboid's top N groups by measure.
  serve-bench FILE [--queries N] [--skews A,B] [--workers W]
       [--clients C] [--cache SEGS] [--machines K] [--memory M]
       [--chaos] [--chaos-seed S] [--hedge] [--deadline-us D]
       [--ingest-rate R] [--max-layers N] [--profile]
       [--phase-csv FILE] [--flight-out FILE]
      Build + store the cube in memory, then serve Zipf-skewed query
      workloads through the concurrent CubeServer behind the resilient
      client, reporting QPS, p50/p99 latency, segment-cache hit rate,
      typed errors, deadline misses, and hedge counters per skew.
      --chaos injects a seeded fault schedule (latency spikes plus
      transient read failures) into the segment blob reads; --hedge
      races slow requests with a duplicate attempt; --deadline-us
      bounds each query's end-to-end budget. --ingest-rate R switches
      to the incremental store and serves open-loop queries while R-row
      delta batches land concurrently (one report line per step:
      layers, ingest time, QPS, p50/p99), compacting past --max-layers.
      --chaos composes with --ingest-rate: seeded write faults (failed
      and torn puts) hit every layer publication, the ingest session
      retries through them, and a repairing scrub after each step
      verifies the live chain stayed clean (retry/repair counts are
      appended to each step line). --profile routes every query through
      the always-on flight recorder and appends a phase-attribution
      table (queue-wait / blob-IO / decode / merge / finalize p50+p99);
      --phase-csv writes those columns as CSV, and --flight-out
      persists the tail-sampled traces (errors, deadline misses,
      above-p99 latencies) as JSONL for `inspect -- flight`.
  profile FILE [serve-bench options]
      Alias for `serve-bench --profile`.
  help
";

/// Blob-path prefix used inside every CubeStore directory the CLI writes.
const STORE_PREFIX: &str = "cube";

fn load(args: &Args) -> Result<Relation> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| Error::Config("input TSV path required".into()))?;
    io::read_tsv_file(path)
}

fn cluster_from(args: &Args, n: usize) -> Result<ClusterConfig> {
    let machines: usize = args.get_or("machines", 20)?;
    let memory: usize = args.get_or("memory", (n / machines.max(1)).max(1))?;
    Ok(ClusterConfig::new(machines, memory))
}

fn agg_from(args: &Args) -> Result<AggSpec> {
    Ok(match args.get("agg").unwrap_or("count") {
        "count" => AggSpec::Count,
        "sum" => AggSpec::Sum,
        "min" => AggSpec::Min,
        "max" => AggSpec::Max,
        "avg" => AggSpec::Avg,
        "count_distinct" => AggSpec::CountDistinct,
        other => return Err(Error::Config(format!("unknown aggregate `{other}`"))),
    })
}

fn generate(args: &Args) -> Result<()> {
    let dataset = args.require("dataset")?;
    let n: usize = args.get_or("n", 100_000)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let dims: usize = args.get_or("dims", 4)?;
    let p: f64 = args.get_or("p", 0.25)?;
    let out = args.require("out")?;
    let rel = match dataset {
        "zipf" => datagen::gen_zipf(n, dims, seed),
        "binomial" => datagen::gen_binomial(n, dims, p, seed),
        "wikipedia" => datagen::wikipedia_like(n, seed),
        "usagov" => datagen::usagov_like(n, seed),
        "retail" => datagen::retail(n, p, seed),
        "apex" => datagen::apex_only_skew(n, dims, seed),
        other => return Err(Error::Config(format!("unknown dataset `{other}`"))),
    };
    io::write_tsv_file(&rel, out)?;
    println!(
        "wrote {} tuples ({} bytes) to {out}",
        rel.len(),
        rel.wire_bytes()
    );
    Ok(())
}

fn sketch(args: &Args) -> Result<()> {
    let rel = load(args)?;
    let cluster = cluster_from(args, rel.len())?;
    let (sketch, round) = if args.has("exact-sketch") {
        (build_exact_sketch(&rel, &cluster), None)
    } else {
        let (s, m) = build_sampled_sketch(&rel, &cluster, &SketchConfig::default())?;
        (s, Some(m))
    };
    println!(
        "sketch over {} tuples: d = {}, k = {}, m = {}",
        rel.len(),
        rel.arity(),
        cluster.machines,
        cluster.skew_threshold()
    );
    println!("  skewed c-groups : {}", sketch.skew_count());
    println!("  serialized size : {} bytes", sketch.serialized_bytes());
    if let Some(m) = round {
        println!("  sample records  : {}", m.map_output_records);
        println!("  round time (sim): {:.2}s", m.simulated_seconds);
    }
    for mask in Mask::full(rel.arity()).subsets() {
        let node = sketch.node(mask);
        if node.skew_count() > 0 {
            println!(
                "  cuboid {:0>width$b}: {} skews",
                mask.0,
                node.skew_count(),
                width = rel.arity()
            );
        }
    }
    Ok(())
}

fn cube(args: &Args) -> Result<()> {
    let rel = load(args)?;
    let want_obs = args.get("trace").is_some() || args.get("metrics").is_some();
    let obs = if want_obs {
        ObsHandle::wall()
    } else {
        ObsHandle::default()
    };
    let cluster = cluster_from(args, rel.len())?.with_obs(obs.clone());
    let agg = agg_from(args)?;
    let algo = args.get("algo").unwrap_or("spcube");
    let (cube, metrics): (Cube, RunMetrics) = match algo {
        "spcube" => {
            let mut cfg = SpCubeConfig::new(agg);
            cfg.min_support = args.get_or("min-support", 1)?;
            cfg.use_exact_sketch = args.has("exact-sketch");
            let run = SpCube::run(&rel, &cluster, &cfg)?;
            println!(
                "sketch: {} bytes, {} skews",
                run.sketch_bytes,
                run.sketch.skew_count()
            );
            (run.cube, run.metrics)
        }
        "pig" => {
            let run = mr_cube(&rel, &cluster, &MrCubeConfig::new(agg))?;
            (run.cube, run.metrics)
        }
        "hive" => {
            let run = hive_cube(&rel, &cluster, &HiveConfig::new(agg))?;
            (run.cube, run.metrics)
        }
        "naive" => {
            let run = naive_mr_cube(&rel, &cluster, agg)?;
            (run.cube, run.metrics)
        }
        "topdown" => {
            let run = top_down_cube(&rel, &cluster, agg)?;
            (run.cube, run.metrics)
        }
        other => return Err(Error::Config(format!("unknown algorithm `{other}`"))),
    };

    println!(
        "{algo}/{}: {} c-groups in {} round(s); {:.1}s simulated; {} intermediate bytes",
        agg.name(),
        cube.len(),
        metrics.round_count(),
        metrics.total_seconds(),
        metrics.map_output_bytes()
    );
    if let Some(dir) = args.get("out") {
        std::fs::create_dir_all(dir).map_err(|e| Error::Io(format!("creating {dir}"), e))?;
        let q = CubeQuery::new(&cube, rel.arity());
        let mut failed = None;
        let paths = q.export_per_cuboid(dir, |path, body| {
            if failed.is_none() {
                if let Err(e) = std::fs::write(&path, body) {
                    failed = Some(Error::Io(format!("writing {path}"), e));
                }
            }
        });
        if let Some(e) = failed {
            return Err(e);
        }
        println!("wrote {} cuboid files under {dir}/", paths.len());
    }
    if let Some(path) = args.get("trace") {
        std::fs::write(path, obs.trace_jsonl())
            .map_err(|e| Error::Io(format!("writing {path}"), e))?;
        println!("wrote span/event trace (JSONL) to {path}");
    }
    if let Some(path) = args.get("metrics") {
        std::fs::write(path, obs.prometheus())
            .map_err(|e| Error::Io(format!("writing {path}"), e))?;
        println!("wrote metrics snapshot to {path}");
    }
    Ok(())
}

fn cuboid(args: &Args) -> Result<()> {
    let rel = load(args)?;
    let agg = agg_from(args)?;
    let mask = mask_from(args, rel.arity())?;
    let top_n: usize = args.get_or("top", 20)?;
    let cube = spcube_cubealg::buc(&rel, agg, &spcube_cubealg::BucConfig::default());
    let q = CubeQuery::new(&cube, rel.arity());
    println!(
        "cuboid {:0>width$b}: {} groups; top {top_n} by {}:",
        mask.0,
        q.cuboid_len(mask),
        agg.name(),
        width = rel.arity()
    );
    for (g, v) in q.top(mask, top_n) {
        println!("  {:<40} {v}", g.display(rel.arity()));
    }
    Ok(())
}

/// Parse a CLI value token the way the TSV reader would: integer if it
/// looks like one, string otherwise.
fn parse_value(tok: &str) -> Value {
    tok.parse::<i64>()
        .map_or_else(|_| Value::str(tok), Value::Int)
}

fn mask_from(args: &Args, d: usize) -> Result<Mask> {
    let mask_str = args.require("mask")?;
    let bits = u32::from_str_radix(mask_str, 2)
        .map_err(|_| Error::Config(format!("--mask `{mask_str}` is not binary")))?;
    let mask = Mask(bits);
    if !mask.is_subset_of(Mask::full(d)) {
        return Err(Error::Config(format!(
            "--mask {mask_str} has bits beyond the {d}-dimensional schema"
        )));
    }
    Ok(mask)
}

fn build_store(args: &Args) -> Result<()> {
    let rel = load(args)?;
    let cluster = cluster_from(args, rel.len())?;
    let out = args.require("out")?;
    let mut cfg = SpCubeConfig::new(agg_from(args)?);
    cfg.min_support = args.get_or("min-support", 1)?;
    cfg.use_exact_sketch = args.has("exact-sketch");
    let run = SpCube::run(&rel, &cluster, &cfg)?;
    let blobs = DirBlobs::new(out);
    let report = write_store(
        &blobs,
        STORE_PREFIX,
        &run.cube,
        rel.arity(),
        cfg.agg,
        cfg.min_support,
    )?;
    println!(
        "stored {} c-groups as {} segments ({} bytes) under {out}/{STORE_PREFIX}/ \
         as generation {}",
        report.rows, report.segments, report.bytes, report.generation
    );
    Ok(())
}

fn ingest(args: &Args) -> Result<()> {
    let batch = load(args)?;
    let dir = args.require("store")?;
    let blobs = DirBlobs::new(dir);
    let report = ingest_batch(&blobs, STORE_PREFIX, &batch, agg_from(args)?)?;
    println!(
        "ingested {} tuples as generation {}: {} state segments, {} bytes, \
         {} state rows; live chain {:?} ({} layer(s))",
        batch.len(),
        report.generation,
        report.segments,
        report.bytes,
        report.rows,
        report.layers,
        report.layers.len()
    );
    if report.layers.len() > 4 {
        eprintln!(
            "hint: {} layers now serve every read; `spcube compact {dir}` folds them",
            report.layers.len()
        );
    }
    Ok(())
}

fn compact_store(args: &Args) -> Result<()> {
    let dir = args
        .positional
        .first()
        .ok_or_else(|| Error::Config("CubeStore directory required".into()))?;
    let policy = CompactionPolicy {
        max_layers: args.get_or("max-layers", 4)?,
    };
    let blobs = DirBlobs::new(dir);
    match spcube_cubestore::compact(&blobs, STORE_PREFIX, &policy)? {
        Some(report) => println!(
            "folded layers {:?} into generation {}: {} segments, {} bytes, \
             {} state rows; live chain {:?} ({} layer(s))",
            report.folded,
            report.generation,
            report.segments,
            report.bytes,
            report.rows,
            report.layers,
            report.layers.len()
        ),
        None => println!(
            "chain within policy (max {} layer(s)); nothing to fold",
            policy.max_layers
        ),
    }
    Ok(())
}

fn scrub_store(args: &Args) -> Result<()> {
    let dir = args
        .positional
        .first()
        .ok_or_else(|| Error::Config("CubeStore directory required".into()))?;
    let config = if args.has("check-only") {
        ScrubConfig::read_only()
    } else {
        ScrubConfig::default()
    };
    let mut scrubber = Scrubber::new(config);
    if let Some(path) = args.get("recover") {
        scrubber = scrubber.with_recovery(io::read_tsv_file(path)?);
    }
    let blobs = DirBlobs::new(dir);
    let report = scrubber.run(&blobs, STORE_PREFIX)?;
    let Some(generation) = report.generation else {
        println!("no committed generation under {dir}; nothing to scrub");
        return Ok(());
    };
    println!(
        "scrubbed generation {generation}: {} manifest(s) + {} segment(s) checked, {} clean",
        report.manifests_checked, report.segments_checked, report.clean
    );
    if report.corrupt == 0 {
        return Ok(());
    }
    println!(
        "{} corrupt blob(s): {} quarantined, {} repaired in place, {} unrepairable",
        report.corrupt, report.quarantined, report.repaired, report.unrepairable
    );
    for f in &report.findings {
        let action = match (f.quarantined, f.repaired) {
            (true, true) => "quarantined, repaired",
            (true, false) => "quarantined",
            (false, true) => "repaired",
            (false, false) => "detected",
        };
        println!("  {}  [{}] {}", f.path, action, f.what);
    }
    if report.unrepairable > 0 && !args.has("check-only") {
        return Err(Error::corrupt(
            "store",
            format!(
                "{} blob(s) remain corrupt; quarantined copies are under {STORE_PREFIX}/quarantine/",
                report.unrepairable
            ),
        ));
    }
    Ok(())
}

fn query(args: &Args) -> Result<()> {
    let dir = args
        .positional
        .first()
        .ok_or_else(|| Error::Config("CubeStore directory required".into()))?;
    let store = CubeStore::open(
        Arc::new(DirBlobs::new(dir)) as Arc<dyn BlobStore>,
        STORE_PREFIX,
    )?;
    let d = store.dims();
    let mask = mask_from(args, d)?;

    if let Some(point) = args.get("point") {
        let key: Vec<Value> = point.split(',').map(parse_value).collect();
        if key.len() != mask.arity() as usize {
            return Err(Error::Config(format!(
                "--point has {} values but the cuboid groups {} dimensions",
                key.len(),
                mask.arity()
            )));
        }
        match store.point(mask, &key)? {
            Some(v) => println!("{v}"),
            None => println!("(no such group)"),
        }
    } else if let Some(slice) = args.get("slice") {
        let (dim_s, val_s) = slice
            .split_once('=')
            .ok_or_else(|| Error::Config("--slice expects DIM=VALUE".into()))?;
        let dim: usize = dim_s
            .parse()
            .map_err(|_| Error::Config(format!("--slice dimension `{dim_s}` is not a number")))?;
        let rows = store.slice(mask, dim, &parse_value(val_s))?;
        println!("{} groups match dim {dim} = {val_s}:", rows.len());
        for (g, v) in rows {
            println!("  {:<40} {v}", g.display(d));
        }
    } else {
        let n: usize = args.get_or("top", 20)?;
        println!(
            "cuboid {:0>width$b}: {} groups; top {n} by measure:",
            mask.0,
            store.cuboid_len(mask)?,
            width = d
        );
        for (g, score) in store.top(mask, n)? {
            println!("  {:<40} {score}", g.display(d));
        }
    }
    let stats = store.stats();
    if stats.degraded_recomputes > 0 {
        eprintln!(
            "warning: {} cuboid(s) served via degraded recompute",
            stats.degraded_recomputes
        );
    }
    if stats.torn_commits > 0 {
        eprintln!(
            "warning: a torn commit was repaired at open; serving generation {}",
            store.generation()
        );
    }
    if stats.quarantined_blobs > 0 {
        eprintln!(
            "warning: {} orphan blob(s) from an aborted commit moved to {STORE_PREFIX}/quarantine/",
            stats.quarantined_blobs
        );
    }
    Ok(())
}

fn serve_bench(args: &Args) -> Result<()> {
    let rel = load(args)?;
    if args.get("ingest-rate").is_some() {
        return serve_bench_under_ingest(args, &rel);
    }
    let cluster = cluster_from(args, rel.len())?;
    let cfg = SpCubeConfig::new(agg_from(args)?);
    let dfs = Dfs::new();
    let stored = SpCube::run_and_store(&rel, &cluster, &cfg, &dfs, STORE_PREFIX)?;
    println!(
        "built + stored {} c-groups ({} segments, {} bytes)",
        stored.run.cube.len(),
        stored.report.segments,
        stored.report.bytes
    );
    // --chaos wraps the blob layer in a seeded fault injector so the
    // resilience machinery (retries, hedging, deadlines, breaker) has
    // something to push against; `inspect serve-faults SEED` previews
    // the same schedule.
    // --profile turns on the flight recorder: one wall-clock obs handle
    // shared by the fault injector, the store, and the server, so every
    // query's spans land in the same per-thread rings.
    let profile = args.has("profile");
    let obs = if profile {
        ObsHandle::wall()
    } else {
        ObsHandle::default()
    };
    let blobs: Arc<dyn BlobStore> = if args.has("chaos") {
        let schedule = FaultSchedule {
            seed: args.get_or("chaos-seed", 7)?,
            transient_fail_prob: 0.05,
            latency_spike_prob: 0.10,
            spike_us: 20_000,
            only_matching: Some(".cseg".to_string()),
            ..FaultSchedule::default()
        };
        schedule.validate()?;
        Arc::new(
            FaultyBlobs::new(Arc::new(dfs) as Arc<dyn BlobStore>, schedule).with_obs(obs.clone()),
        )
    } else {
        Arc::new(dfs)
    };
    let store = Arc::new(
        CubeStore::open(blobs, STORE_PREFIX)?
            .with_recovery(rel.clone())
            .with_cache_capacity(args.get_or("cache", 4)?)
            .with_obs(obs.clone()),
    );

    let queries: usize = args.get_or("queries", 5_000)?;
    let skews: Vec<f64> = match args.get("skews") {
        None => vec![0.5, 1.5],
        Some(s) => s
            .split(',')
            .map(|t| {
                t.parse()
                    .map_err(|_| Error::Config(format!("--skews: cannot parse `{t}`")))
            })
            .collect::<Result<_>>()?,
    };
    let deadline_us = match args.get("deadline-us") {
        None => None,
        Some(_) => Some(args.get_or("deadline-us", 0u64)?),
    };
    let serve_cfg = ServeBenchConfig {
        workers: args.get_or("workers", 4)?,
        queue_capacity: args.get_or("queue", 64)?,
        clients: args.get_or("clients", 4)?,
        deadline_us,
        hedge: args.has("hedge"),
        max_attempts: args.get_or("attempts", 3)?,
        profile,
    };
    let mut phase_rows = Vec::new();
    for (i, &skew) in skews.iter().enumerate() {
        let workload = datagen::gen_query_workload(&rel, queries, skew, 0x5b + i as u64);
        let report = run_serving(Arc::clone(&store), &workload, &serve_cfg);
        println!(
            "skew {skew:.2}: {} served + {} typed errors, {:.0} QPS, p50 {:.1}us, \
             p99 {:.1}us, hit rate {:.3}, {} overload retries",
            report.served,
            report.typed_errors,
            report.qps,
            report.p50_us,
            report.p99_us,
            report.cache_hit_rate,
            report.overload_retries
        );
        if deadline_us.is_some() || serve_cfg.hedge {
            println!(
                "           {} deadline misses (rate {:.3}), {} hedges fired, \
                 {} won (rate {:.3})",
                report.deadline_misses,
                report.deadline_miss_rate,
                report.hedges_fired,
                report.hedges_won,
                report.hedge_win_rate
            );
        }
        if let Some(p) = report.phases {
            phase_rows.push((format!("skew-{skew:.2}"), p));
        }
    }
    if profile {
        println!();
        print!("{}", phase_table("serve-bench", &phase_rows));
        if let Some(csv) = args.get("phase-csv") {
            write_phase_csv(csv, &phase_rows)?;
            println!("phase CSV written to {csv}");
        }
        let kept = obs.flight_kept();
        println!(
            "flight recorder: {} trace(s) tail-sampled in (errors, deadline \
             misses, and above-p99 latencies)",
            kept.len()
        );
        if let Some(out) = args.get("flight-out") {
            if let Some(dir) = std::path::Path::new(out).parent() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| Error::Io(format!("creating {}", dir.display()), e))?;
            }
            std::fs::write(out, obs.flight_jsonl())
                .map_err(|e| Error::Io(format!("writing {out}"), e))?;
            println!("flight traces written to {out} (inspect with `inspect -- flight {out}`)");
        }
    }
    Ok(())
}

/// The `--ingest-rate` mode: build an incremental (delta-layered) store
/// from most of the input, then serve open-loop queries while the
/// held-out rows land as R-row delta batches, one serving window per
/// batch, compacting whenever the chain exceeds `--max-layers`.
fn serve_bench_under_ingest(args: &Args, rel: &Relation) -> Result<()> {
    let rate: usize = args.get_or("ingest-rate", 1_000)?;
    if rate == 0 {
        return Err(Error::Config("--ingest-rate must be at least 1".into()));
    }
    let steps = (rel.len() / (2 * rate)).clamp(1, 4);
    let base_n = rel.len().saturating_sub(steps * rate);
    if base_n == 0 {
        return Err(Error::Config(format!(
            "--ingest-rate {rate} leaves no base rows in a {}-tuple input",
            rel.len()
        )));
    }
    let cut = |from: usize, to: usize| -> Result<Relation> {
        let mut part = Relation::empty(rel.schema().clone());
        for t in &rel.tuples()[from..to] {
            part.push(t.clone())?;
        }
        Ok(part)
    };
    let agg = agg_from(args)?;
    let base = cut(0, base_n)?;
    let batches: Vec<Relation> = (0..steps)
        .map(|i| cut(base_n + i * rate, base_n + (i + 1) * rate))
        .collect::<Result<_>>()?;

    let dfs: Arc<dyn BlobStore> = Arc::new(Dfs::new());
    let report = ingest_batch(dfs.as_ref(), STORE_PREFIX, &base, agg)?;
    println!(
        "seeded incremental store: {} tuples, {} state rows, generation {}",
        base.len(),
        report.rows,
        report.generation
    );
    // --chaos on the write path: seeded put failures and torn staged
    // writes hit the sweep's layer publications (the base seed above goes
    // through the clean layer). The ingest session's retries absorb them
    // and a post-step scrub proves readers never saw the damage.
    let chaos = args.has("chaos");
    let blobs: Arc<dyn BlobStore> = if chaos {
        let schedule = FaultSchedule {
            seed: args.get_or("chaos-seed", 7)?,
            put_transient_fail_prob: 0.08,
            torn_write_prob: 0.02,
            ..FaultSchedule::default()
        };
        schedule.validate()?;
        println!("write chaos armed: seed {}", schedule.seed);
        Arc::new(FaultyBlobs::new(Arc::clone(&dfs), schedule))
    } else {
        dfs
    };

    let queries: usize = args.get_or("queries", 5_000)?;
    let per_step = (queries / steps).max(1);
    let workload = datagen::gen_query_workload(&base, queries, 1.5, 0x5b);
    let reports = run_serving_under_ingest(
        &blobs,
        STORE_PREFIX,
        &batches,
        &workload,
        &IngestBenchConfig {
            serve: ServeBenchConfig {
                workers: args.get_or("workers", 4)?,
                queue_capacity: args.get_or("queue", 64)?,
                clients: args.get_or("clients", 4)?,
                deadline_us: None,
                hedge: args.has("hedge"),
                max_attempts: args.get_or("attempts", 3)?,
                profile: false,
            },
            queries_per_step: per_step,
            spec: agg,
            policy: Some(CompactionPolicy {
                max_layers: args.get_or("max-layers", 4)?,
            }),
            ingest: if chaos {
                IngestConfig {
                    max_attempts: 50,
                    backoff: spcube_common::retry::Backoff::Fixed(0.002),
                    ..IngestConfig::default()
                }
            } else {
                IngestConfig::default()
            },
            scrub: chaos,
        },
    )?;
    for r in &reports {
        let chaos_cols = if chaos {
            format!(
                ", {} ingest retries, {} scrub repairs",
                r.ingest_retries, r.scrub_repaired
            )
        } else {
            String::new()
        };
        println!(
            "step {}: {} layer(s){}, ingest {:.1}ms ({} state rows), \
             {} served + {} typed errors, {:.0} QPS, p50 {:.1}us, p99 {:.1}us{chaos_cols}",
            r.step,
            r.layers,
            if r.compacted { " (compacted)" } else { "" },
            r.ingest_seconds * 1e3,
            r.ingested_rows,
            r.serving.served,
            r.serving.typed_errors,
            r.serving.qps,
            r.serving.p50_us,
            r.serving.p99_us
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(tokens: &[String]) -> Result<()> {
        run(tokens)
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn generate_sketch_cube_pipeline() {
        let dir = std::env::temp_dir().join(format!("spcube-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tsv = dir.join("data.tsv");
        let tsv_s = tsv.to_str().unwrap();

        call(&argv(&[
            "generate",
            "--dataset",
            "retail",
            "--n",
            "3000",
            "--p",
            "0.4",
            "--seed",
            "5",
            "--out",
            tsv_s,
        ]))
        .unwrap();
        assert!(tsv.exists());

        call(&argv(&[
            "sketch",
            tsv_s,
            "--machines",
            "5",
            "--memory",
            "200",
        ]))
        .unwrap();

        let out = dir.join("cube");
        for algo in ["spcube", "pig", "hive", "naive", "topdown"] {
            call(&argv(&[
                "cube",
                tsv_s,
                "--algo",
                algo,
                "--agg",
                "sum",
                "--machines",
                "5",
                "--memory",
                "200",
                "--out",
                out.to_str().unwrap(),
            ]))
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
        }
        // 2^3 cuboid files written.
        assert_eq!(std::fs::read_dir(&out).unwrap().count(), 8);

        // An instrumented run exports a parseable trace and a snapshot.
        let trace = dir.join("trace.jsonl");
        let metrics = dir.join("metrics.prom");
        call(&argv(&[
            "cube",
            tsv_s,
            "--algo",
            "spcube",
            "--machines",
            "5",
            "--memory",
            "200",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();
        let jsonl = std::fs::read_to_string(&trace).unwrap();
        let tree = spcube_obs::SpanTree::parse_jsonl(&jsonl).unwrap();
        tree.validate().unwrap();
        assert!(!tree.spans_named(spcube_obs::names::ENGINE_ROUND).is_empty());
        assert!(std::fs::read_to_string(&metrics)
            .unwrap()
            .contains("spcube_reducer_imbalance"));

        call(&argv(&["cuboid", tsv_s, "--mask", "101", "--top", "3"])).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(call(&argv(&["nope"])).is_err());
        assert!(call(&argv(&["cube"])).is_err());
        assert!(call(&argv(&[
            "generate",
            "--dataset",
            "bogus",
            "--out",
            "/tmp/x"
        ]))
        .is_err());
        assert!(call(&argv(&["help"])).is_ok());
    }

    #[test]
    fn store_and_query_pipeline() {
        let dir = std::env::temp_dir().join(format!("spcube-cli-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tsv = dir.join("data.tsv");
        let tsv_s = tsv.to_str().unwrap();
        call(&argv(&[
            "generate",
            "--dataset",
            "retail",
            "--n",
            "2000",
            "--p",
            "0.3",
            "--seed",
            "11",
            "--out",
            tsv_s,
        ]))
        .unwrap();

        let store_dir = dir.join("store");
        let store_s = store_dir.to_str().unwrap();
        call(&argv(&[
            "build-store",
            tsv_s,
            "--out",
            store_s,
            "--machines",
            "5",
        ]))
        .unwrap();
        assert!(store_dir.join(STORE_PREFIX).join("manifest.cman").exists());

        // Top-k, point, and slice all answer against the on-disk store.
        call(&argv(&["query", store_s, "--mask", "101", "--top", "3"])).unwrap();
        call(&argv(&["query", store_s, "--mask", "000", "--point", ""])).unwrap_err();
        call(&argv(&[
            "query", store_s, "--mask", "001", "--slice", "0=1",
        ]))
        .unwrap();
        // Arity mismatch between --point and the mask is reported.
        let err = call(&argv(&["query", store_s, "--mask", "101", "--point", "1"])).unwrap_err();
        assert!(err.to_string().contains("values"));

        call(&argv(&[
            "serve-bench",
            tsv_s,
            "--machines",
            "5",
            "--queries",
            "200",
            "--clients",
            "2",
            "--workers",
            "2",
        ]))
        .unwrap();
        // The chaos path: injected faults, hedging, and a generous
        // deadline must still complete every query (answer or typed
        // error) without erroring out of the harness.
        call(&argv(&[
            "serve-bench",
            tsv_s,
            "--machines",
            "5",
            "--queries",
            "150",
            "--clients",
            "2",
            "--workers",
            "2",
            "--cache",
            "1",
            "--chaos",
            "--chaos-seed",
            "9",
            "--hedge",
            "--deadline-us",
            "2000000",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ingest_compact_query_pipeline() {
        let dir = std::env::temp_dir().join(format!("spcube-cli-inc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store_dir = dir.join("store");
        let store_s = store_dir.to_str().unwrap();

        // Three TSV batches of one relation; ingest them as delta layers.
        let rel = datagen::gen_zipf(900, 3, 0x77);
        for i in 0..3 {
            let mut part = Relation::empty(rel.schema().clone());
            for t in &rel.tuples()[i * 300..(i + 1) * 300] {
                part.push(t.clone()).unwrap();
            }
            let tsv = dir.join(format!("batch{i}.tsv"));
            io::write_tsv_file(&part, tsv.to_str().unwrap()).unwrap();
            call(&argv(&[
                "ingest",
                tsv.to_str().unwrap(),
                "--store",
                store_s,
                "--agg",
                "avg",
            ]))
            .unwrap();
        }
        // The layered store answers the same queries build-store's would.
        call(&argv(&["query", store_s, "--mask", "101", "--top", "3"])).unwrap();

        // Mismatched aggregate on a later batch is a typed error.
        let tsv0 = dir.join("batch0.tsv");
        let err = call(&argv(&[
            "ingest",
            tsv0.to_str().unwrap(),
            "--store",
            store_s,
            "--agg",
            "sum",
        ]))
        .unwrap_err();
        assert!(matches!(err, Error::Config(_)), "got {err}");

        // Fold the chain down and keep answering.
        call(&argv(&["compact", store_s, "--max-layers", "1"])).unwrap();
        call(&argv(&["query", store_s, "--mask", "011", "--top", "3"])).unwrap();
        // Within policy now: compact again reports nothing to fold.
        call(&argv(&["compact", store_s, "--max-layers", "1"])).unwrap();

        // A clean chain scrubs clean.
        call(&argv(&["scrub", store_s])).unwrap();
        // Rot one sub-cuboid state segment on disk; a check-only pass
        // detects without touching, then a real pass repairs in place.
        let victim = walk_for(&store_dir, "cuboid-011.dseg");
        let mut bytes = std::fs::read(&victim).unwrap();
        bytes[13] ^= 0x40;
        std::fs::write(&victim, bytes).unwrap();
        call(&argv(&["scrub", store_s, "--check-only"])).unwrap();
        call(&argv(&["scrub", store_s])).unwrap();
        call(&argv(&["query", store_s, "--mask", "011", "--top", "3"])).unwrap();
        // The full-mask segment has no repair source: scrub exits nonzero.
        let victim = walk_for(&store_dir, "cuboid-111.dseg");
        let mut bytes = std::fs::read(&victim).unwrap();
        bytes[13] ^= 0x40;
        std::fs::write(&victim, bytes).unwrap();
        call(&argv(&["scrub", store_s])).unwrap_err();

        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Live copy of the blob named `suffix`: the match in the highest
    /// generation directory, skipping quarantine copies and swept orphans.
    fn walk_for(dir: &std::path::Path, suffix: &str) -> std::path::PathBuf {
        let mut hits = Vec::new();
        let mut stack = vec![dir.to_path_buf()];
        while let Some(d) = stack.pop() {
            for entry in std::fs::read_dir(&d).unwrap() {
                let path = entry.unwrap().path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.to_str().is_some_and(|p| {
                    p.ends_with(suffix) && !p.contains(spcube_cubestore::manifest::QUARANTINE_DIR)
                }) {
                    hits.push(path);
                }
            }
        }
        hits.sort();
        hits.pop()
            .unwrap_or_else(|| panic!("no file ending with {suffix} under {}", dir.display()))
    }

    #[test]
    fn serve_bench_ingest_rate_mode() {
        let dir = std::env::temp_dir().join(format!("spcube-cli-rate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tsv = dir.join("data.tsv");
        let tsv_s = tsv.to_str().unwrap();
        call(&argv(&[
            "generate",
            "--dataset",
            "zipf",
            "--n",
            "1200",
            "--dims",
            "3",
            "--seed",
            "3",
            "--out",
            tsv_s,
        ]))
        .unwrap();
        call(&argv(&[
            "serve-bench",
            tsv_s,
            "--ingest-rate",
            "150",
            "--queries",
            "120",
            "--clients",
            "2",
            "--workers",
            "2",
            "--max-layers",
            "2",
        ]))
        .unwrap();
        // --chaos composes with --ingest-rate: write faults hit the layer
        // publications, retries ride them out, and the per-step scrub
        // confirms the live chain stayed clean — as a run, not a panic.
        call(&argv(&[
            "serve-bench",
            tsv_s,
            "--ingest-rate",
            "150",
            "--queries",
            "120",
            "--clients",
            "2",
            "--workers",
            "2",
            "--max-layers",
            "2",
            "--chaos",
            "--chaos-seed",
            "11",
        ]))
        .unwrap();
        // A rate that leaves no base rows is a typed error, not a panic.
        let err = call(&argv(&["serve-bench", tsv_s, "--ingest-rate", "0"])).unwrap_err();
        assert!(matches!(err, Error::Config(_)), "got {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cuboid_mask_validation() {
        let dir = std::env::temp_dir().join(format!("spcube-cli-m-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tsv = dir.join("d.tsv");
        call(&argv(&[
            "generate",
            "--dataset",
            "zipf",
            "--n",
            "100",
            "--dims",
            "3",
            "--out",
            tsv.to_str().unwrap(),
        ]))
        .unwrap();
        // Mask with a bit beyond d=3.
        let err = call(&argv(&["cuboid", tsv.to_str().unwrap(), "--mask", "1000"])).unwrap_err();
        assert!(err.to_string().contains("beyond"));
        // Non-binary mask.
        assert!(call(&argv(&["cuboid", tsv.to_str().unwrap(), "--mask", "xyz"])).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
