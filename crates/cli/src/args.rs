//! Tiny flag parser for the CLI (the workspace's dependency policy has no
//! argument-parsing crate, and the surface here is small).

use std::collections::HashMap;

use spcube_common::{Error, Result};

/// Parsed command line: a subcommand, positional arguments, and `--flag
/// value` / `--switch` options.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &[
    "exact-sketch",
    "quiet",
    "help",
    "chaos",
    "hedge",
    "check-only",
    "profile",
];

impl Args {
    /// Parse a raw argument list (without the program name).
    pub fn parse(raw: &[String]) -> Result<Args> {
        let mut args = Args::default();
        let mut i = 0;
        while i < raw.len() {
            let tok = &raw[i];
            if let Some(name) = tok.strip_prefix("--") {
                if SWITCHES.contains(&name) {
                    args.switches.push(name.to_string());
                } else {
                    i += 1;
                    let value = raw
                        .get(i)
                        .ok_or_else(|| Error::Config(format!("--{name} needs a value")))?;
                    args.flags.insert(name.to_string(), value.clone());
                }
            } else if args.command.is_empty() {
                args.command = tok.clone();
            } else {
                args.positional.push(tok.clone());
            }
            i += 1;
        }
        Ok(args)
    }

    /// String flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| Error::Config(format!("--{name}: cannot parse `{v}`"))),
        }
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> Result<&str> {
        self.get(name)
            .ok_or_else(|| Error::Config(format!("--{name} is required")))
    }

    /// Boolean switch presence.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Force a switch on (used by command aliases: `spcube profile` is
    /// `serve-bench` with `--profile` forced).
    pub fn with_switch(mut self, name: &str) -> Args {
        if !self.has(name) {
            self.switches.push(name.to_string());
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn command_positional_and_flags() {
        let a = parse(&["cube", "data.tsv", "--algo", "spcube", "--machines", "8"]);
        assert_eq!(a.command, "cube");
        assert_eq!(a.positional, vec!["data.tsv"]);
        assert_eq!(a.get("algo"), Some("spcube"));
        assert_eq!(a.get_or("machines", 0usize).unwrap(), 8);
        assert_eq!(a.get_or("memory", 42usize).unwrap(), 42);
    }

    #[test]
    fn switches_take_no_value() {
        let a = parse(&["sketch", "--exact-sketch", "data.tsv"]);
        assert!(a.has("exact-sketch"));
        assert_eq!(a.positional, vec!["data.tsv"]);
    }

    #[test]
    fn missing_value_is_an_error() {
        let raw = vec!["cube".to_string(), "--algo".to_string()];
        assert!(Args::parse(&raw).is_err());
    }

    #[test]
    fn bad_parse_is_an_error() {
        let a = parse(&["cube", "--machines", "many"]);
        assert!(a.get_or("machines", 0usize).is_err());
    }

    #[test]
    fn require_reports_flag_name() {
        let a = parse(&["cube"]);
        let err = a.require("algo").unwrap_err();
        assert!(err.to_string().contains("--algo"));
    }
}
