//! The MapReduce job interface.

use crate::context::{MapContext, ReduceContext};

/// What the engine does when a single key's value set cannot fit in a
/// machine's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LargeGroupBehavior {
    /// Aggregate through disk: correctness preserved, heavy I/O charged to
    /// the cost model (the naive algorithm's fate in Section 3.2).
    Spill,
    /// Abort the job with [`Error::OutOfMemory`](spcube_common::Error) —
    /// models value-buffering implementations such as the Hive reducers
    /// that got stuck on heavily skewed data (Section 6.2).
    Fail,
}

/// A MapReduce job: the unit the engine executes in one round.
///
/// Unlike textbook `map(t)` signatures, [`MrJob::map_split`] is invoked
/// once per input split with the whole split. This lets jobs keep per-task
/// state — SP-Cube's mappers accumulate partial aggregates of skewed
/// c-groups and flush them at the end of the split (Algorithm 3, lines
/// 16–20), and Hive-style jobs keep a bounded combining hash table. A
/// per-tuple job simply loops over the split.
pub trait MrJob: Sync {
    /// Input record type (usually a tuple of the relation).
    type Input: Sync;
    /// Shuffle key. `Ord` is required because the engine, like Hadoop,
    /// presents keys to each reducer in sorted order.
    type Key: Ord + std::hash::Hash + Clone + Send;
    /// Shuffle value.
    type Value: Send;
    /// Reduce output record.
    type Output: Send;

    /// Job name, for metrics and reports.
    fn name(&self) -> String;

    /// Map phase: process one split, emitting via the context.
    fn map_split(&self, ctx: &mut MapContext<'_, Self::Key, Self::Value>, split: &[Self::Input]);

    /// Route a key to one of `reducers` partitions. The default hashes the
    /// key (Hadoop's default partitioner); SP-Cube plugs its sketch-driven
    /// range partitioner here.
    fn partition(&self, key: &Self::Key, reducers: usize) -> usize {
        crate::partition::hash_partition(key, reducers)
    }

    /// Whether the engine should run [`MrJob::combine`] on each map task's
    /// buffered output before the shuffle.
    fn has_combiner(&self) -> bool {
        false
    }

    /// Combiner: fold a key's buffered values (within one map task) into
    /// fewer values. Only called when [`MrJob::has_combiner`] is true.
    fn combine(&self, _key: &Self::Key, _values: &mut Vec<Self::Value>) {}

    /// Reduce one key group. `values` arrive in deterministic order
    /// (map-task order, then emission order).
    fn reduce(
        &self,
        ctx: &mut ReduceContext<'_, Self::Output>,
        key: Self::Key,
        values: Vec<Self::Value>,
    );

    /// Wire size of a key.
    fn key_bytes(&self, key: &Self::Key) -> u64;

    /// Wire size of a value.
    fn value_bytes(&self, value: &Self::Value) -> u64;

    /// Size of an output record as written to the DFS.
    fn output_bytes(&self, output: &Self::Output) -> u64;

    /// Memory-overflow policy for oversized key groups.
    fn large_group_behavior(&self) -> LargeGroupBehavior {
        LargeGroupBehavior::Spill
    }

    /// Multiplier on the engine's per-value reduce-side cost (sort +
    /// aggregation CPU). Models implementation differences the paper
    /// observes: Hive's vectorized reduce-side hash aggregation skips the
    /// sort and is markedly cheaper per value (its average reduce time is
    /// the best in Figure 7b despite the largest shuffle), while sort-based
    /// reducers pay full price. Default 1.0.
    fn reduce_cost_factor(&self) -> f64 {
        1.0
    }
}
