//! Map and reduce task contexts.

/// Emission buffer handed to a map task.
///
/// Collects `(key, value)` pairs and lets the job charge explicit CPU work
/// units (e.g. lattice-node visits) to the cost model.
#[derive(Debug)]
pub struct MapContext<'a, K, V> {
    pub(crate) out: &'a mut Vec<(K, V)>,
    pub(crate) work_units: u64,
    pub(crate) task: usize,
}

impl<'a, K, V> MapContext<'a, K, V> {
    pub(crate) fn new(out: &'a mut Vec<(K, V)>, task: usize) -> Self {
        MapContext {
            out,
            work_units: 0,
            task,
        }
    }

    /// Emit one intermediate pair.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        self.out.push((key, value));
    }

    /// Charge `units` of abstract CPU work (each costs
    /// [`cpu_per_work_unit_s`](crate::CostModel::cpu_per_work_unit_s)).
    #[inline]
    pub fn charge(&mut self, units: u64) {
        self.work_units += units;
    }

    /// Index of the map task (machine) running this split.
    pub fn task(&self) -> usize {
        self.task
    }

    /// Number of pairs emitted so far.
    pub fn emitted(&self) -> usize {
        self.out.len()
    }
}

/// Output collector handed to a reduce call.
#[derive(Debug)]
pub struct ReduceContext<'a, O> {
    pub(crate) out: &'a mut Vec<O>,
    pub(crate) work_units: u64,
    pub(crate) reducer: usize,
}

impl<'a, O> ReduceContext<'a, O> {
    pub(crate) fn new(out: &'a mut Vec<O>, reducer: usize) -> Self {
        ReduceContext {
            out,
            work_units: 0,
            reducer,
        }
    }

    /// Emit one output record.
    #[inline]
    pub fn emit(&mut self, output: O) {
        self.out.push(output);
    }

    /// Charge `units` of abstract CPU work.
    #[inline]
    pub fn charge(&mut self, units: u64) {
        self.work_units += units;
    }

    /// Index of the reducer running this group.
    pub fn reducer(&self) -> usize {
        self.reducer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_context_collects() {
        let mut buf = Vec::new();
        let mut ctx = MapContext::new(&mut buf, 3);
        ctx.emit(1, "a");
        ctx.emit(2, "b");
        ctx.charge(5);
        assert_eq!(ctx.task(), 3);
        assert_eq!(ctx.emitted(), 2);
        assert_eq!(ctx.work_units, 5);
        assert_eq!(buf, vec![(1, "a"), (2, "b")]);
    }

    #[test]
    fn reduce_context_collects() {
        let mut buf = Vec::new();
        let mut ctx = ReduceContext::new(&mut buf, 1);
        ctx.emit(10);
        ctx.charge(2);
        assert_eq!(ctx.reducer(), 1);
        assert_eq!(buf, vec![10]);
    }
}
