//! A hand-rolled MapReduce execution engine.
//!
//! The paper's algorithms run on Hadoop over a 20-machine AWS cluster. This
//! crate reproduces the MapReduce *semantics* those algorithms rely on —
//! map tasks over input splits, a byte-accounted shuffle with pluggable
//! partitioning, optional combiners, sorted reduce-side grouping, and a
//! per-machine memory model — as a deterministic, multi-threaded,
//! in-process engine.
//!
//! Two kinds of results come out of a job:
//!
//! 1. **Real output** — jobs actually move `(key, value)` pairs and the
//!    reduce outputs are collected, so cube results are exact and testable.
//! 2. **Metrics** — every record and byte crossing the shuffle is counted,
//!    and a calibrated [`CostModel`] converts the counters into simulated
//!    cluster seconds (map time, shuffle time, reduce time, spill
//!    penalties, per-round startup overhead). Wall-clock of an in-process
//!    simulator cannot reflect network and disk effects, so the experiment
//!    harness reports these simulated seconds; see `DESIGN.md`.
//!
//! The memory model is the paper's: each of the `k` machines has `O(m)`
//! memory, `m = n/k` tuples. A reducer whose working set exceeds memory
//! *spills* (slow, charged to the cost model) — or *fails* if the job
//! declares large groups fatal, which models the Hive reducers that went
//! out of memory on heavily skewed synthetic data (Section 6.2).
// Serving-path crate: panic-free outside tests (see DESIGN.md and the
// spcheck gate). Clippy enforces the unwrap ban; spcheck covers the rest.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
// Concurrency discipline (PR 8): no mutex-wrapped scalars that should be
// atomics, and no lock guards living inside match/if-let scrutinees.
#![warn(clippy::mutex_atomic)]
#![warn(clippy::significant_drop_in_scrutinee)]

pub mod config;
pub mod context;
pub mod cost;
pub mod dfs;
pub mod engine;
pub mod fault;
pub mod job;
pub mod metrics;
pub mod partition;

pub use config::ClusterConfig;
pub use context::{MapContext, ReduceContext};
pub use cost::CostModel;
pub use dfs::Dfs;
pub use engine::{run_job, JobResult};
pub use fault::{Backoff, FaultPlan, MachineFailure, Phase, RetryPolicy, SpeculationConfig};
pub use job::{LargeGroupBehavior, MrJob};
pub use metrics::{JobMetrics, RunMetrics, Stopwatch};
