//! Stock partitioners.

use std::hash::{Hash, Hasher};

/// Hadoop's default: hash the key, modulo the reducer count. Deterministic
/// across runs (std's `DefaultHasher` with fixed initial state).
pub fn hash_partition<K: Hash>(key: &K, reducers: usize) -> usize {
    debug_assert!(reducers > 0);
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % reducers as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_partition(&"abc", 7), hash_partition(&"abc", 7));
        assert_eq!(hash_partition(&42u64, 13), hash_partition(&42u64, 13));
    }

    #[test]
    fn in_range() {
        for i in 0..100 {
            let p = hash_partition(&i, 7);
            assert!(p < 7);
        }
    }

    #[test]
    fn spreads_keys() {
        // 1000 distinct keys over 10 reducers: every reducer sees some.
        let mut counts = [0usize; 10];
        for i in 0..1000 {
            counts[hash_partition(&i, 10)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 50), "{counts:?}");
    }
}
