//! The cluster cost model.
//!
//! Converts the engine's exact record/byte counters into simulated cluster
//! seconds. The constants are calibrated to a 20-node Hadoop cluster of
//! m3.xlarge machines (4 cores, 15 GB RAM, SSD — the paper's setup),
//! *scaled down* together with the input sizes: the experiments run the
//! real algorithms on millions instead of hundreds of millions of tuples,
//! and the [`CostModel::paper_scale`] constructor shrinks bandwidths by the
//! same factor so the reported seconds land in the paper's range and, more
//! importantly, the *relative* behaviour of the algorithms (who wins,
//! where crossovers happen) is preserved. Absolute numbers are not claimed;
//! see `EXPERIMENTS.md`.

/// Cost constants, all in seconds per unit.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Fixed startup/teardown overhead per MapReduce round (job scheduling,
    /// JVM spin-up, commit). Makes multi-round algorithms pay per round and
    /// makes SP-Cube's sketch round visible on small inputs, as in the
    /// paper's small-data measurements.
    pub round_overhead_s: f64,
    /// CPU per input record read by a mapper.
    pub map_cpu_per_record_s: f64,
    /// CPU per unit of work charged explicitly by jobs
    /// ([`MapContext::charge`](crate::MapContext::charge)) — e.g. one
    /// lattice-node visit or one sketch lookup.
    pub cpu_per_work_unit_s: f64,
    /// CPU per emitted record (serialization + collector).
    pub cpu_per_emit_s: f64,
    /// Local-disk bandwidth for writing map output (Hadoop spills map
    /// output to local disk before the shuffle).
    pub map_disk_bytes_per_s: f64,
    /// Per-machine network bandwidth for the shuffle.
    pub net_bytes_per_s: f64,
    /// CPU per value processed by a reducer.
    pub reduce_cpu_per_value_s: f64,
    /// CPU per reducer for sorting/grouping, per value (the merge-sort of
    /// the shuffle output).
    pub sort_cpu_per_value_s: f64,
    /// Disk bandwidth for reducer spills (written + read back once each).
    pub spill_bytes_per_s: f64,
    /// Disk bandwidth for writing final output to the DFS.
    pub out_disk_bytes_per_s: f64,
}

impl CostModel {
    /// Baseline constants for the paper's cluster at full scale
    /// (n in the hundreds of millions).
    pub fn m3_xlarge() -> CostModel {
        CostModel {
            round_overhead_s: 8.0,
            map_cpu_per_record_s: 0.4e-6,
            cpu_per_work_unit_s: 0.1e-6,
            cpu_per_emit_s: 0.5e-6,
            map_disk_bytes_per_s: 150e6,
            net_bytes_per_s: 60e6,
            reduce_cpu_per_value_s: 0.5e-6,
            sort_cpu_per_value_s: 0.4e-6,
            spill_bytes_per_s: 40e6,
            out_disk_bytes_per_s: 150e6,
        }
    }

    /// The m3.xlarge model with every throughput divided by `scale` (and
    /// per-record costs multiplied by it), so that an experiment on
    /// `n / scale` tuples reports seconds comparable to the paper's run on
    /// `n` tuples. `scale = 1.0` is the raw model.
    pub fn paper_scale(scale: f64) -> CostModel {
        assert!(scale > 0.0, "scale must be positive");
        let base = CostModel::m3_xlarge();
        CostModel {
            round_overhead_s: base.round_overhead_s,
            map_cpu_per_record_s: base.map_cpu_per_record_s * scale,
            cpu_per_work_unit_s: base.cpu_per_work_unit_s * scale,
            cpu_per_emit_s: base.cpu_per_emit_s * scale,
            map_disk_bytes_per_s: base.map_disk_bytes_per_s / scale,
            net_bytes_per_s: base.net_bytes_per_s / scale,
            reduce_cpu_per_value_s: base.reduce_cpu_per_value_s * scale,
            sort_cpu_per_value_s: base.sort_cpu_per_value_s * scale,
            spill_bytes_per_s: base.spill_bytes_per_s / scale,
            out_disk_bytes_per_s: base.out_disk_bytes_per_s / scale,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::m3_xlarge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_identity() {
        let a = CostModel::m3_xlarge();
        let b = CostModel::paper_scale(1.0);
        assert_eq!(a.net_bytes_per_s, b.net_bytes_per_s);
        assert_eq!(a.map_cpu_per_record_s, b.map_cpu_per_record_s);
    }

    #[test]
    fn paper_scale_scales_bandwidth_down_and_cpu_up() {
        let b = CostModel::paper_scale(100.0);
        let base = CostModel::m3_xlarge();
        assert!((b.net_bytes_per_s - base.net_bytes_per_s / 100.0).abs() < 1e-6);
        assert!((b.map_cpu_per_record_s - base.map_cpu_per_record_s * 100.0).abs() < 1e-12);
        // Round overhead is wall time, not throughput: unscaled.
        assert_eq!(b.round_overhead_s, base.round_overhead_s);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        CostModel::paper_scale(0.0);
    }
}
