//! A minimal in-memory "distributed file system".
//!
//! The paper's cluster shares a DFS from which the input is read, to which
//! the cube is written, and through which the serialized SP-Sketch is
//! broadcast to every machine before the cube round ("Once computed, the
//! SP-Sketch is stored in the distributed file system, to be later cached
//! by all machines", Section 4.2). This type mirrors those interactions and
//! counts the bytes moved, so sketch-distribution overhead is visible in
//! the experiment reports.
//!
//! For fault testing the DFS can also inject silent corruption: a bit of a
//! stored blob can be flipped on demand ([`Dfs::corrupt_byte`]) or
//! scheduled to flip on the next write to a path
//! ([`Dfs::corrupt_next_write`]), modelling disk bit-rot the reader must
//! detect by checksum.

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

use spcube_common::sync::lock_or_recover;

/// Shared byte-blob store with read/write accounting and corruption
/// injection.
#[derive(Debug, Default)]
pub struct Dfs {
    inner: Mutex<DfsInner>,
}

#[derive(Debug, Default)]
struct DfsInner {
    files: HashMap<String, Vec<u8>>,
    bytes_written: u64,
    bytes_read: u64,
    corrupt_on_write: HashSet<String>,
}

impl Dfs {
    /// An empty DFS.
    pub fn new() -> Dfs {
        Dfs::default()
    }

    /// Store a blob under `path`, replacing any previous content. If
    /// corruption was scheduled for `path`, one bit of the stored copy is
    /// silently flipped (the writer never notices, just like real bit-rot).
    pub fn put(&self, path: &str, mut data: Vec<u8>) {
        let mut inner = lock_or_recover(&self.inner);
        if inner.corrupt_on_write.remove(path) && !data.is_empty() {
            let mid = data.len() / 2;
            if let Some(b) = data.get_mut(mid) {
                *b ^= 0x01;
            }
        }
        inner.bytes_written += data.len() as u64;
        inner.files.insert(path.to_string(), data);
    }

    /// Fetch a copy of the blob at `path`.
    pub fn get(&self, path: &str) -> spcube_common::Result<Vec<u8>> {
        let mut inner = lock_or_recover(&self.inner);
        match inner.files.get(path) {
            Some(data) => {
                let data = data.clone();
                inner.bytes_read += data.len() as u64;
                Ok(data)
            }
            None => Err(spcube_common::Error::DfsMissing(path.to_string())),
        }
    }

    /// Size of the blob at `path`, if present.
    pub fn len_of(&self, path: &str) -> Option<u64> {
        lock_or_recover(&self.inner)
            .files
            .get(path)
            .map(|d| d.len() as u64)
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        lock_or_recover(&self.inner).bytes_written
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        lock_or_recover(&self.inner).bytes_read
    }

    /// Flip the low bit of the byte at `offset` of the blob at `path`
    /// (fault injection for tests). Errors when the blob is missing or
    /// shorter than `offset`.
    pub fn corrupt_byte(&self, path: &str, offset: usize) -> spcube_common::Result<()> {
        let mut inner = lock_or_recover(&self.inner);
        let data = inner
            .files
            .get_mut(path)
            .ok_or_else(|| spcube_common::Error::DfsMissing(path.to_string()))?;
        if offset >= data.len() {
            return Err(spcube_common::Error::Config(format!(
                "corruption offset {offset} beyond blob of {} bytes",
                data.len()
            )));
        }
        if let Some(b) = data.get_mut(offset) {
            *b ^= 0x01;
        }
        Ok(())
    }

    /// Schedule one bit-flip to happen during the *next* write to `path`.
    /// Lets a test corrupt a blob that a driver writes and reads within a
    /// single call.
    pub fn corrupt_next_write(&self, path: &str) {
        lock_or_recover(&self.inner)
            .corrupt_on_write
            .insert(path.to_string());
    }

    /// Every stored path under `prefix` (i.e. equal to it or below
    /// `prefix/`), with blob sizes, sorted by path. An empty prefix lists
    /// everything. Listing is not counted as read traffic — it models a
    /// namespace scan, not a data fetch.
    pub fn list_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        let inner = lock_or_recover(&self.inner);
        let mut out: Vec<(String, u64)> = inner
            .files
            .iter()
            .filter(|(path, _)| {
                prefix.is_empty()
                    || path.as_str() == prefix
                    || path
                        .strip_prefix(prefix)
                        .is_some_and(|rest| rest.starts_with('/'))
            })
            .map(|(path, data)| (path.clone(), data.len() as u64))
            .collect();
        out.sort();
        out
    }

    /// Remove the blob at `path`. Returns whether it existed (deleting a
    /// missing blob is not an error — deletes must be idempotent so a
    /// crashed-and-reissued GC pass converges).
    pub fn delete(&self, path: &str) -> bool {
        lock_or_recover(&self.inner).files.remove(path).is_some()
    }

    /// A deep copy of the current file contents with fresh counters and no
    /// pending corruption. Crash-matrix tests fork a prepared base state
    /// once per schedule instead of rebuilding it from scratch.
    pub fn fork(&self) -> Dfs {
        let inner = lock_or_recover(&self.inner);
        Dfs {
            inner: Mutex::new(DfsInner {
                files: inner.files.clone(),
                ..DfsInner::default()
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let dfs = Dfs::new();
        dfs.put("sketch", vec![1, 2, 3]);
        assert_eq!(dfs.get("sketch").expect("get"), vec![1, 2, 3]);
        assert_eq!(dfs.len_of("sketch"), Some(3));
    }

    #[test]
    fn missing_file_errors() {
        let dfs = Dfs::new();
        assert!(dfs.get("nope").is_err());
        assert_eq!(dfs.len_of("nope"), None);
    }

    #[test]
    fn accounting_counts_reads_and_writes() {
        let dfs = Dfs::new();
        dfs.put("a", vec![0; 10]);
        let _ = dfs.get("a").expect("get");
        let _ = dfs.get("a").expect("get");
        assert_eq!(dfs.bytes_written(), 10);
        assert_eq!(dfs.bytes_read(), 20);
    }

    #[test]
    fn overwrite_replaces() {
        let dfs = Dfs::new();
        dfs.put("a", vec![1]);
        dfs.put("a", vec![2, 3]);
        assert_eq!(dfs.get("a").expect("get"), vec![2, 3]);
        assert_eq!(dfs.bytes_written(), 3);
    }

    #[test]
    fn corrupt_byte_flips_one_bit() {
        let dfs = Dfs::new();
        dfs.put("a", vec![0u8; 4]);
        dfs.corrupt_byte("a", 2).expect("corrupt");
        assert_eq!(dfs.get("a").expect("get"), vec![0, 0, 1, 0]);
        assert!(dfs.corrupt_byte("a", 99).is_err());
        assert!(dfs.corrupt_byte("missing", 0).is_err());
    }

    #[test]
    fn list_prefix_is_sorted_and_boundary_exact() {
        let dfs = Dfs::new();
        dfs.put("store/gen-2/b", vec![1, 2]);
        dfs.put("store/gen-1/a", vec![1]);
        dfs.put("store/manifest", vec![1, 2, 3]);
        dfs.put("storeother/x", vec![9]);
        assert_eq!(
            dfs.list_prefix("store"),
            vec![
                ("store/gen-1/a".to_string(), 1),
                ("store/gen-2/b".to_string(), 2),
                ("store/manifest".to_string(), 3),
            ]
        );
        assert_eq!(dfs.list_prefix("store/gen-1").len(), 1);
        assert_eq!(dfs.list_prefix("").len(), 4);
        assert!(dfs.list_prefix("nope").is_empty());
    }

    #[test]
    fn delete_is_idempotent() {
        let dfs = Dfs::new();
        dfs.put("a", vec![1]);
        assert!(dfs.delete("a"));
        assert!(!dfs.delete("a"));
        assert!(dfs.get("a").is_err());
    }

    #[test]
    fn fork_copies_files_but_not_counters() {
        let dfs = Dfs::new();
        dfs.put("a", vec![1, 2]);
        let _ = dfs.get("a").expect("get");
        let fork = dfs.fork();
        assert_eq!(fork.get("a").expect("get"), vec![1, 2]);
        assert_eq!(fork.bytes_written(), 0);
        // Writes to the fork do not leak back.
        fork.put("b", vec![3]);
        assert!(dfs.get("b").is_err());
    }

    #[test]
    fn scheduled_corruption_hits_next_write_only() {
        let dfs = Dfs::new();
        dfs.corrupt_next_write("a");
        dfs.put("a", vec![0u8; 3]);
        assert_eq!(dfs.get("a").expect("get"), vec![0, 1, 0]);
        // The schedule is consumed; later writes are clean.
        dfs.put("a", vec![0u8; 3]);
        assert_eq!(dfs.get("a").expect("get"), vec![0, 0, 0]);
    }
}
