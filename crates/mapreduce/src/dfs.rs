//! A minimal in-memory "distributed file system".
//!
//! The paper's cluster shares a DFS from which the input is read, to which
//! the cube is written, and through which the serialized SP-Sketch is
//! broadcast to every machine before the cube round ("Once computed, the
//! SP-Sketch is stored in the distributed file system, to be later cached
//! by all machines", Section 4.2). This type mirrors those interactions and
//! counts the bytes moved, so sketch-distribution overhead is visible in
//! the experiment reports.

use std::collections::HashMap;

use parking_lot::Mutex;

/// Shared byte-blob store with read/write accounting.
#[derive(Debug, Default)]
pub struct Dfs {
    inner: Mutex<DfsInner>,
}

#[derive(Debug, Default)]
struct DfsInner {
    files: HashMap<String, Vec<u8>>,
    bytes_written: u64,
    bytes_read: u64,
}

impl Dfs {
    /// An empty DFS.
    pub fn new() -> Dfs {
        Dfs::default()
    }

    /// Store a blob under `path`, replacing any previous content.
    pub fn put(&self, path: &str, data: Vec<u8>) {
        let mut inner = self.inner.lock();
        inner.bytes_written += data.len() as u64;
        inner.files.insert(path.to_string(), data);
    }

    /// Fetch a copy of the blob at `path`.
    pub fn get(&self, path: &str) -> spcube_common::Result<Vec<u8>> {
        let mut inner = self.inner.lock();
        match inner.files.get(path) {
            Some(data) => {
                let data = data.clone();
                inner.bytes_read += data.len() as u64;
                Ok(data)
            }
            None => Err(spcube_common::Error::DfsMissing(path.to_string())),
        }
    }

    /// Size of the blob at `path`, if present.
    pub fn len_of(&self, path: &str) -> Option<u64> {
        self.inner.lock().files.get(path).map(|d| d.len() as u64)
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.inner.lock().bytes_written
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.inner.lock().bytes_read
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let dfs = Dfs::new();
        dfs.put("sketch", vec![1, 2, 3]);
        assert_eq!(dfs.get("sketch").unwrap(), vec![1, 2, 3]);
        assert_eq!(dfs.len_of("sketch"), Some(3));
    }

    #[test]
    fn missing_file_errors() {
        let dfs = Dfs::new();
        assert!(dfs.get("nope").is_err());
        assert_eq!(dfs.len_of("nope"), None);
    }

    #[test]
    fn accounting_counts_reads_and_writes() {
        let dfs = Dfs::new();
        dfs.put("a", vec![0; 10]);
        let _ = dfs.get("a").unwrap();
        let _ = dfs.get("a").unwrap();
        assert_eq!(dfs.bytes_written(), 10);
        assert_eq!(dfs.bytes_read(), 20);
    }

    #[test]
    fn overwrite_replaces() {
        let dfs = Dfs::new();
        dfs.put("a", vec![1]);
        dfs.put("a", vec![2, 3]);
        assert_eq!(dfs.get("a").unwrap(), vec![2, 3]);
        assert_eq!(dfs.bytes_written(), 3);
    }
}
