//! Per-job and per-run metrics.

// The workspace's single wall-clock source now lives in `spcube-obs`
// (the tracer shares it); re-exported here so `spcube_mapreduce::
// Stopwatch` importers keep working.
pub use spcube_obs::Stopwatch;

/// Everything measured for one MapReduce round: exact record/byte counters
/// plus the simulated phase times derived from the cost model. These are
/// the quantities the paper reports — total running time, average map and
/// reduce time, and intermediate (map output) data size.
#[derive(Debug, Clone, Default)]
pub struct JobMetrics {
    /// Job name.
    pub name: String,
    /// Number of map tasks (machines).
    pub map_tasks: usize,
    /// Number of reduce tasks.
    pub reduce_tasks: usize,
    /// Input records across all map tasks.
    pub input_records: u64,
    /// Intermediate records after combining — what crosses the network.
    pub map_output_records: u64,
    /// Intermediate bytes after combining — the paper's "map output size".
    pub map_output_bytes: u64,
    /// Shuffle bytes received per reducer.
    pub reducer_input_bytes: Vec<u64>,
    /// Output bytes written per reducer — the load-balance measure of
    /// Section 6.2 ("reducers' output data files being of similar sizes").
    pub reducer_output_bytes: Vec<u64>,
    /// Output records across all reducers.
    pub output_records: u64,
    /// Bytes that had to be spilled to disk by overloaded reducers.
    pub spilled_bytes: u64,
    /// Failed task attempts that were re-executed (failure injection).
    pub task_retries: u64,
    /// Tasks (or completed task outputs) lost to machine failures.
    pub tasks_lost: u64,
    /// Tasks re-executed on a surviving machine after a machine loss.
    pub re_executions: u64,
    /// Speculative backup attempts launched for straggling tasks.
    pub speculative_launches: u64,
    /// Simulated seconds of discarded work: failed attempts, outputs lost
    /// with dead machines, and losing speculative twins.
    pub wasted_seconds: f64,
    /// Degraded-mode events: 1 when this round ran in a fallback mode
    /// (e.g. SP-Cube's hash-partitioned cube round after losing its
    /// sketch), 0 otherwise.
    pub fallback_events: u64,
    /// Largest single key group (in values) seen by any reducer.
    pub largest_group_values: u64,
    /// Simulated seconds of each map task.
    pub map_times: Vec<f64>,
    /// Simulated seconds of each reduce task.
    pub reduce_times: Vec<f64>,
    /// Simulated shuffle seconds (max over reducers of receive time).
    pub shuffle_seconds: f64,
    /// Simulated total for this round: overhead + max(map) + shuffle +
    /// max(reduce).
    pub simulated_seconds: f64,
    /// Host wall-clock seconds actually spent executing the round.
    pub wall_seconds: f64,
}

impl JobMetrics {
    /// Mean simulated map-task seconds.
    pub fn avg_map_time(&self) -> f64 {
        mean(&self.map_times)
    }

    /// Mean simulated reduce-task seconds.
    pub fn avg_reduce_time(&self) -> f64 {
        mean(&self.reduce_times)
    }

    /// Reducer output imbalance: max/mean of per-reducer output bytes
    /// (1.0 = perfectly balanced). Reducers with no output are included.
    pub fn reducer_imbalance(&self) -> f64 {
        let m = self.reducer_output_bytes.iter().copied().max().unwrap_or(0) as f64;
        let avg = mean(
            &self
                .reducer_output_bytes
                .iter()
                .map(|&b| b as f64)
                .collect::<Vec<_>>(),
        );
        if avg == 0.0 {
            1.0
        } else {
            m / avg
        }
    }
}

/// Metrics of a full algorithm run (one or more MapReduce rounds).
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Per-round metrics, in execution order.
    pub rounds: Vec<JobMetrics>,
}

impl RunMetrics {
    /// Record a finished round.
    pub fn push(&mut self, m: JobMetrics) {
        self.rounds.push(m);
    }

    /// Total simulated seconds across rounds — the paper's "running time".
    pub fn total_seconds(&self) -> f64 {
        self.rounds.iter().map(|r| r.simulated_seconds).sum()
    }

    /// Total intermediate bytes across rounds — the paper's "intermediate
    /// data size" / "map output size".
    pub fn map_output_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.map_output_bytes).sum()
    }

    /// Total intermediate records across rounds.
    pub fn map_output_records(&self) -> u64 {
        self.rounds.iter().map(|r| r.map_output_records).sum()
    }

    /// Average map time of the dominant (largest map-output) round — the
    /// paper reports "the average running time of a mapper … in a single
    /// job", which for multi-round algorithms is the cube round.
    pub fn avg_map_time(&self) -> f64 {
        self.dominant().map_or(0.0, JobMetrics::avg_map_time)
    }

    /// Average reduce time of the dominant round.
    pub fn avg_reduce_time(&self) -> f64 {
        self.dominant().map_or(0.0, JobMetrics::avg_reduce_time)
    }

    /// Total spilled bytes across rounds.
    pub fn spilled_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.spilled_bytes).sum()
    }

    /// Number of rounds executed.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Total failed task attempts that were retried, across rounds.
    pub fn task_retries(&self) -> u64 {
        self.rounds.iter().map(|r| r.task_retries).sum()
    }

    /// Total tasks (or task outputs) lost to machine failures.
    pub fn tasks_lost(&self) -> u64 {
        self.rounds.iter().map(|r| r.tasks_lost).sum()
    }

    /// Total tasks re-executed after machine losses.
    pub fn re_executions(&self) -> u64 {
        self.rounds.iter().map(|r| r.re_executions).sum()
    }

    /// Total speculative backup attempts launched.
    pub fn speculative_launches(&self) -> u64 {
        self.rounds.iter().map(|r| r.speculative_launches).sum()
    }

    /// Total simulated seconds of discarded (recovered-from) work.
    pub fn wasted_seconds(&self) -> f64 {
        self.rounds.iter().map(|r| r.wasted_seconds).sum()
    }

    /// Total degraded-mode (fallback) events across rounds.
    pub fn fallback_events(&self) -> u64 {
        self.rounds.iter().map(|r| r.fallback_events).sum()
    }

    /// True when any round recovered from an injected fault or ran
    /// degraded — the quick "did the fault layer do anything" probe.
    pub fn saw_recovery(&self) -> bool {
        self.task_retries() > 0
            || self.tasks_lost() > 0
            || self.re_executions() > 0
            || self.speculative_launches() > 0
            || self.fallback_events() > 0
    }

    fn dominant(&self) -> Option<&JobMetrics> {
        self.rounds.iter().max_by_key(|r| r.map_output_bytes)
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, out_bytes: u64, sim: f64) -> JobMetrics {
        JobMetrics {
            name: name.into(),
            map_tasks: 2,
            reduce_tasks: 2,
            input_records: 10,
            map_output_records: 20,
            map_output_bytes: out_bytes,
            reducer_input_bytes: vec![out_bytes / 2, out_bytes / 2],
            reducer_output_bytes: vec![30, 10],
            output_records: 4,
            spilled_bytes: 5,
            largest_group_values: 3,
            map_times: vec![1.0, 3.0],
            reduce_times: vec![2.0, 2.0],
            shuffle_seconds: 0.5,
            simulated_seconds: sim,
            wall_seconds: 0.01,
            ..JobMetrics::default()
        }
    }

    #[test]
    fn averages() {
        let m = sample("j", 100, 9.0);
        assert_eq!(m.avg_map_time(), 2.0);
        assert_eq!(m.avg_reduce_time(), 2.0);
        assert_eq!(m.reducer_imbalance(), 30.0 / 20.0);
    }

    #[test]
    fn run_totals_sum_rounds() {
        let mut run = RunMetrics::default();
        run.push(sample("a", 100, 5.0));
        run.push(sample("b", 300, 7.0));
        assert_eq!(run.total_seconds(), 12.0);
        assert_eq!(run.map_output_bytes(), 400);
        assert_eq!(run.spilled_bytes(), 10);
        assert_eq!(run.round_count(), 2);
        // Dominant round is "b" (300 bytes).
        assert_eq!(run.avg_map_time(), 2.0);
    }

    #[test]
    fn empty_run() {
        let run = RunMetrics::default();
        assert_eq!(run.total_seconds(), 0.0);
        assert_eq!(run.avg_map_time(), 0.0);
    }

    #[test]
    fn imbalance_of_empty_outputs_is_one() {
        let mut m = sample("j", 0, 1.0);
        m.reducer_output_bytes = vec![0, 0];
        assert_eq!(m.reducer_imbalance(), 1.0);
    }

    #[test]
    fn recovery_counters_sum_across_rounds() {
        let mut run = RunMetrics::default();
        assert!(!run.saw_recovery());
        let mut a = sample("a", 100, 5.0);
        a.task_retries = 2;
        a.tasks_lost = 1;
        a.re_executions = 1;
        a.wasted_seconds = 3.5;
        let mut b = sample("b", 300, 7.0);
        b.speculative_launches = 4;
        b.wasted_seconds = 1.5;
        b.fallback_events = 1;
        run.push(a);
        run.push(b);
        assert_eq!(run.task_retries(), 2);
        assert_eq!(run.tasks_lost(), 1);
        assert_eq!(run.re_executions(), 1);
        assert_eq!(run.speculative_launches(), 4);
        assert_eq!(run.wasted_seconds(), 5.0);
        assert_eq!(run.fallback_events(), 1);
        assert!(run.saw_recovery());
    }
}
