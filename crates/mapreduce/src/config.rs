//! Cluster configuration.

use spcube_common::Result;
use spcube_obs::ObsHandle;

use crate::cost::CostModel;
use crate::fault::{FaultPlan, MachineFailure, Phase, RetryPolicy, SpeculationConfig};

/// Configuration of the simulated cluster (Section 2.3 of the paper).
///
/// `machines` is the paper's `k`; `memory_tuples` is `m` — both the
/// per-machine memory in tuples and, by Definition 2.7, the skew threshold:
/// a c-group is skewed iff more than `m` tuples belong to it.
///
/// Fault behaviour lives in three sub-configs: the injected [`FaultPlan`],
/// the [`RetryPolicy`] for failed attempts, and the speculative-execution
/// policy ([`SpeculationConfig`]). [`ClusterConfig::validate`] checks all
/// numeric knobs and is run by the engine before every job, so a NaN or
/// negative probability surfaces as a typed `Error::Config` instead of a
/// debug-only assert.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of machines `k`. Each runs one map task and one reduce task
    /// per phase (the paper's setting).
    pub machines: usize,
    /// Per-machine memory in tuples (`m`). Also the skew threshold.
    pub memory_tuples: usize,
    /// Per-machine working memory in bytes, used by the reducer spill/OOM
    /// model. Defaults to `memory_tuples * DEFAULT_TUPLE_BYTES`.
    pub memory_bytes: u64,
    /// Host threads used to execute simulated tasks concurrently. Purely a
    /// simulation-speed knob; results and metrics are independent of it.
    pub threads: usize,
    /// The cost model converting counters to simulated seconds.
    pub cost: CostModel,
    /// Injected fault schedule: task failures, stragglers, machine losses.
    /// The default injects nothing.
    pub faults: FaultPlan,
    /// Retry/backoff policy for failed task attempts.
    pub retry: RetryPolicy,
    /// Speculative-execution policy for straggling tasks (off by default).
    pub speculation: SpeculationConfig,
    /// Observability session spans/metrics are recorded into. The default
    /// handle is disabled and instrumentation is a no-op.
    pub obs: ObsHandle,
}

/// Assumed bytes per buffered tuple when deriving `memory_bytes`.
pub const DEFAULT_TUPLE_BYTES: u64 = 48;

impl ClusterConfig {
    /// A cluster of `k` machines with `m` tuples of memory each.
    pub fn new(machines: usize, memory_tuples: usize) -> ClusterConfig {
        assert!(machines > 0, "need at least one machine");
        assert!(memory_tuples > 0, "need positive memory");
        ClusterConfig {
            machines,
            memory_tuples,
            memory_bytes: memory_tuples as u64 * DEFAULT_TUPLE_BYTES,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            cost: CostModel::default(),
            faults: FaultPlan::default(),
            retry: RetryPolicy::default(),
            speculation: SpeculationConfig::default(),
            obs: ObsHandle::default(),
        }
    }

    /// The paper's default: `k` machines, `m = n/k` (machine memory on the
    /// order of its input share).
    pub fn for_input(machines: usize, n_tuples: usize) -> ClusterConfig {
        ClusterConfig::new(machines, (n_tuples / machines).max(1))
    }

    /// Override the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Override the byte memory limit.
    pub fn with_memory_bytes(mut self, bytes: u64) -> Self {
        self.memory_bytes = bytes;
        self
    }

    /// Enable straggler injection: each task straggles with probability
    /// `prob` and then runs `factor ×` slower. Values are validated when a
    /// job runs.
    pub fn with_stragglers(mut self, prob: f64, factor: f64) -> Self {
        self.faults.straggler_prob = prob;
        self.faults.straggler_factor = factor;
        self
    }

    /// Enable task-failure injection: each attempt fails with probability
    /// `prob`; tasks are retried under [`ClusterConfig::retry`].
    pub fn with_task_failures(mut self, prob: f64) -> Self {
        self.faults.task_failure_prob = prob;
        self
    }

    /// Schedule machine `machine` to die during `phase` of every job.
    pub fn with_machine_failure(mut self, phase: Phase, machine: usize) -> Self {
        self.faults.machine_failures.push(MachineFailure {
            job: None,
            phase,
            machine,
        });
        self
    }

    /// Enable speculative execution with the given slack factor.
    pub fn with_speculation(mut self, slack: f64) -> Self {
        self.speculation = SpeculationConfig {
            enabled: true,
            slack,
        };
        self
    }

    /// Override the fault-injection seed (the schedule replays
    /// deterministically for a given seed).
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.faults.seed = seed;
        self
    }

    /// Attach an observability session: jobs on this cluster record
    /// spans, events, and instruments into `obs`.
    pub fn with_obs(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Validate every numeric knob of the fault model. The engine calls
    /// this before running a job; invalid values produce `Error::Config`.
    pub fn validate(&self) -> Result<()> {
        self.faults.validate()?;
        self.retry.validate()?;
        self.speculation.validate()
    }

    /// The skew threshold `m` (Definition 2.7): groups with more tuples
    /// than this are skewed.
    pub fn skew_threshold(&self) -> usize {
        self.memory_tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_input_divides_evenly() {
        let c = ClusterConfig::for_input(20, 1_000_000);
        assert_eq!(c.machines, 20);
        assert_eq!(c.memory_tuples, 50_000);
        assert_eq!(c.skew_threshold(), 50_000);
    }

    #[test]
    fn memory_bytes_defaults_from_tuples() {
        let c = ClusterConfig::new(4, 100);
        assert_eq!(c.memory_bytes, 4800);
        let c = c.with_memory_bytes(99);
        assert_eq!(c.memory_bytes, 99);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_machines_rejected() {
        ClusterConfig::new(0, 1);
    }

    #[test]
    fn small_input_still_positive_memory() {
        let c = ClusterConfig::for_input(20, 5);
        assert_eq!(c.memory_tuples, 1);
    }

    #[test]
    fn default_config_validates() {
        assert!(ClusterConfig::new(4, 100).validate().is_ok());
    }

    #[test]
    fn bad_fault_numbers_are_config_errors() {
        for bad in [
            ClusterConfig::new(4, 100).with_task_failures(f64::NAN),
            ClusterConfig::new(4, 100).with_task_failures(-0.2),
            ClusterConfig::new(4, 100).with_task_failures(1.5),
            ClusterConfig::new(4, 100).with_stragglers(0.5, 0.9),
            ClusterConfig::new(4, 100).with_stragglers(f64::NAN, 2.0),
            ClusterConfig::new(4, 100).with_speculation(0.5),
        ] {
            let err = bad.validate().unwrap_err();
            assert!(
                matches!(err, spcube_common::Error::Config(_)),
                "expected Config error, got {err}"
            );
        }
    }

    #[test]
    fn builders_populate_fault_plan() {
        let c = ClusterConfig::new(4, 100)
            .with_stragglers(0.25, 8.0)
            .with_task_failures(0.1)
            .with_machine_failure(Phase::Map, 2)
            .with_speculation(2.0)
            .with_fault_seed(42);
        assert_eq!(c.faults.straggler_prob, 0.25);
        assert_eq!(c.faults.straggler_factor, 8.0);
        assert_eq!(c.faults.task_failure_prob, 0.1);
        assert_eq!(c.faults.machine_failures.len(), 1);
        assert!(c.speculation.enabled);
        assert_eq!(c.faults.seed, 42);
        assert!(c.validate().is_ok());
    }
}
