//! Cluster configuration.

use crate::cost::CostModel;

/// Configuration of the simulated cluster (Section 2.3 of the paper).
///
/// `machines` is the paper's `k`; `memory_tuples` is `m` — both the
/// per-machine memory in tuples and, by Definition 2.7, the skew threshold:
/// a c-group is skewed iff more than `m` tuples belong to it.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of machines `k`. Each runs one map task and one reduce task
    /// per phase (the paper's setting).
    pub machines: usize,
    /// Per-machine memory in tuples (`m`). Also the skew threshold.
    pub memory_tuples: usize,
    /// Per-machine working memory in bytes, used by the reducer spill/OOM
    /// model. Defaults to `memory_tuples * DEFAULT_TUPLE_BYTES`.
    pub memory_bytes: u64,
    /// Host threads used to execute simulated tasks concurrently. Purely a
    /// simulation-speed knob; results and metrics are independent of it.
    pub threads: usize,
    /// The cost model converting counters to simulated seconds.
    pub cost: CostModel,
    /// Multiplier on a straggling map task's simulated time, applied to
    /// deterministic pseudo-randomly chosen tasks. `1.0` disables
    /// straggling. Used by the engine-robustness experiments.
    pub straggler_factor: f64,
    /// Probability that a given map task straggles (deterministic per task
    /// index). Only meaningful when `straggler_factor > 1.0`.
    pub straggler_prob: f64,
    /// Probability that a task attempt fails and is re-executed
    /// (deterministic per task and attempt). Models Hadoop's task retry:
    /// results are unaffected, but the failed attempt's time is paid again.
    pub task_failure_prob: f64,
    /// Maximum attempts per task before the whole job aborts.
    pub max_task_attempts: u32,
}

/// Assumed bytes per buffered tuple when deriving `memory_bytes`.
pub const DEFAULT_TUPLE_BYTES: u64 = 48;

impl ClusterConfig {
    /// A cluster of `k` machines with `m` tuples of memory each.
    pub fn new(machines: usize, memory_tuples: usize) -> ClusterConfig {
        assert!(machines > 0, "need at least one machine");
        assert!(memory_tuples > 0, "need positive memory");
        ClusterConfig {
            machines,
            memory_tuples,
            memory_bytes: memory_tuples as u64 * DEFAULT_TUPLE_BYTES,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            cost: CostModel::default(),
            straggler_factor: 1.0,
            straggler_prob: 0.0,
            task_failure_prob: 0.0,
            max_task_attempts: 4,
        }
    }

    /// The paper's default: `k` machines, `m = n/k` (machine memory on the
    /// order of its input share).
    pub fn for_input(machines: usize, n_tuples: usize) -> ClusterConfig {
        ClusterConfig::new(machines, (n_tuples / machines).max(1))
    }

    /// Override the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Override the byte memory limit.
    pub fn with_memory_bytes(mut self, bytes: u64) -> Self {
        self.memory_bytes = bytes;
        self
    }

    /// Enable straggler injection.
    pub fn with_stragglers(mut self, prob: f64, factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob));
        assert!(factor >= 1.0);
        self.straggler_prob = prob;
        self.straggler_factor = factor;
        self
    }

    /// Enable task-failure injection (attempts are retried up to
    /// `max_task_attempts`).
    pub fn with_task_failures(mut self, prob: f64) -> Self {
        assert!((0.0..1.0).contains(&prob), "failure probability must be < 1");
        self.task_failure_prob = prob;
        self
    }

    /// The skew threshold `m` (Definition 2.7): groups with more tuples
    /// than this are skewed.
    pub fn skew_threshold(&self) -> usize {
        self.memory_tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_input_divides_evenly() {
        let c = ClusterConfig::for_input(20, 1_000_000);
        assert_eq!(c.machines, 20);
        assert_eq!(c.memory_tuples, 50_000);
        assert_eq!(c.skew_threshold(), 50_000);
    }

    #[test]
    fn memory_bytes_defaults_from_tuples() {
        let c = ClusterConfig::new(4, 100);
        assert_eq!(c.memory_bytes, 4800);
        let c = c.with_memory_bytes(99);
        assert_eq!(c.memory_bytes, 99);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_machines_rejected() {
        ClusterConfig::new(0, 1);
    }

    #[test]
    fn small_input_still_positive_memory() {
        let c = ClusterConfig::for_input(20, 5);
        assert_eq!(c.memory_tuples, 1);
    }
}
