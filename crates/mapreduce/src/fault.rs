//! Fault schedule, retry policy, and speculative execution.
//!
//! The paper's comparison leans on how cube algorithms behave when a real
//! cluster misbehaves — skewed reducers stall rounds, Hive's reducers run
//! out of memory at high skew, MRCube recovers from runtime skew by
//! re-running cuboids. This module supplies the engine's model of that
//! misbehaviour:
//!
//! * [`FaultPlan`] — a deterministic, seeded schedule of injected faults:
//!   per-attempt task failures, stragglers, and whole-machine losses
//!   ([`MachineFailure`]) at a chosen phase of a chosen job. All draws are
//!   hashes of `(seed, job, phase, task, attempt)`, so a schedule replays
//!   identically regardless of host threading.
//! * [`RetryPolicy`] — how many attempts a task gets and what each failed
//!   attempt costs in simulated backoff seconds. Exhausting the budget
//!   aborts the job with a typed [`Error::JobFailed`].
//! * [`SpeculationConfig`] — Hadoop-style speculative execution: a task
//!   running slower than `slack ×` the phase's median task time gets a
//!   backup attempt; the earlier finisher wins and the loser's time is
//!   recorded as wasted work.
//!
//! Machine-loss semantics follow Hadoop: a machine that dies takes its
//! *completed map outputs* with it (they live on local disk), so its map
//! tasks re-execute on a surviving machine; a death during the reduce
//! phase additionally kills the in-flight reduce task, which is
//! rescheduled after the lost map output is regenerated. The engine
//! (`engine.rs`) really re-executes the map closure and replaces the lost
//! output — recovery is observable end to end, not just a time charge.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use spcube_common::{Error, Result};
use spcube_obs::{names, ObsHandle, SpanId};

/// Phase of a MapReduce round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The map phase (input splits → partitioned intermediate pairs).
    Map,
    /// The reduce phase (grouped pairs → outputs).
    Reduce,
}

impl Phase {
    /// Lower-case name, as used in error messages and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Map => "map",
            Phase::Reduce => "reduce",
        }
    }
}

/// One scheduled machine loss: machine `machine` dies during `phase` of
/// every job whose name contains `job` (or of every job when `job` is
/// `None`).
#[derive(Debug, Clone)]
pub struct MachineFailure {
    /// Job-name substring this loss applies to; `None` matches all jobs.
    pub job: Option<String>,
    /// Phase during which the machine dies.
    pub phase: Phase,
    /// Index of the machine that dies.
    pub machine: usize,
}

/// Deterministic, seeded schedule of faults injected into job execution.
///
/// The default plan injects nothing. Probabilities are validated by
/// [`FaultPlan::validate`] (called from `ClusterConfig::validate` before
/// every job) rather than asserted, so a bad configuration surfaces as a
/// typed [`Error::Config`] in release builds too.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed mixed into every pseudo-random draw.
    pub seed: u64,
    /// Probability that a given task attempt fails and is retried.
    pub task_failure_prob: f64,
    /// Probability that a given task straggles.
    pub straggler_prob: f64,
    /// Multiplier on a straggling task's simulated time (`>= 1.0`; `1.0`
    /// disables straggling).
    pub straggler_factor: f64,
    /// Simulated seconds until a dead machine is detected (heartbeat
    /// timeout) and its work is rescheduled.
    pub detection_s: f64,
    /// Scheduled whole-machine losses.
    pub machine_failures: Vec<MachineFailure>,
    /// When set, probabilistic injection (task failures and stragglers)
    /// applies only to jobs whose name contains this substring. Lets a
    /// test make one round of a multi-round algorithm flaky — e.g. fail
    /// the SP-Cube sketch round permanently while the cube round stays
    /// healthy.
    pub only_job: Option<String>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0x5eed,
            task_failure_prob: 0.0,
            straggler_prob: 0.0,
            straggler_factor: 1.0,
            detection_s: 5.0,
            machine_failures: Vec::new(),
            only_job: None,
        }
    }
}

fn check_prob(name: &str, p: f64) -> Result<()> {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return Err(Error::Config(format!(
            "{name} must be a probability in [0, 1], got {p}"
        )));
    }
    Ok(())
}

impl FaultPlan {
    /// Reject NaN/out-of-range probabilities, `straggler_factor < 1.0`,
    /// and negative detection times with [`Error::Config`].
    pub fn validate(&self) -> Result<()> {
        check_prob("task_failure_prob", self.task_failure_prob)?;
        check_prob("straggler_prob", self.straggler_prob)?;
        if self.straggler_factor.is_nan() || self.straggler_factor < 1.0 {
            return Err(Error::Config(format!(
                "straggler_factor must be >= 1.0, got {}",
                self.straggler_factor
            )));
        }
        if self.detection_s.is_nan() || self.detection_s < 0.0 {
            return Err(Error::Config(format!(
                "detection_s must be non-negative, got {}",
                self.detection_s
            )));
        }
        Ok(())
    }

    /// True when probabilistic injection applies to this job.
    fn applies_to(&self, job: &str) -> bool {
        self.only_job.as_deref().is_none_or(|s| job.contains(s))
    }

    /// Deterministic uniform draw in `[0, 1)` for a `(job, phase, task,
    /// attempt)` coordinate.
    fn unit(&self, tag: &str, job: &str, phase: Phase, task: usize, attempt: u32) -> f64 {
        let mut h = DefaultHasher::new();
        self.seed.hash(&mut h);
        tag.hash(&mut h);
        job.hash(&mut h);
        phase.hash(&mut h);
        task.hash(&mut h);
        attempt.hash(&mut h);
        (h.finish() % 1_000_000) as f64 / 1_000_000.0
    }

    /// Does attempt number `attempt` (1-based) of this task fail?
    pub fn attempt_fails(&self, job: &str, phase: Phase, task: usize, attempt: u32) -> bool {
        self.task_failure_prob > 0.0
            && self.applies_to(job)
            && self.unit("task-attempt", job, phase, task, attempt) < self.task_failure_prob
    }

    /// Is this task a straggler?
    pub fn is_straggler(&self, job: &str, phase: Phase, task: usize) -> bool {
        self.straggler_prob > 0.0
            && self.straggler_factor > 1.0
            && self.applies_to(job)
            && self.unit("straggler", job, phase, task, 0) < self.straggler_prob
    }

    /// Machines (indices `< machines`) scheduled to die during `phase` of
    /// `job`, deduplicated and sorted.
    pub fn lost_machines(&self, job: &str, phase: Phase, machines: usize) -> Vec<usize> {
        let mut lost: Vec<usize> = self
            .machine_failures
            .iter()
            .filter(|f| {
                f.phase == phase
                    && f.machine < machines
                    && f.job.as_deref().is_none_or(|s| job.contains(s))
            })
            .map(|f| f.machine)
            .collect();
        lost.sort_unstable();
        lost.dedup();
        lost
    }
}

/// Delay charged between a failed attempt and the next one. The type
/// lives in `spcube_common::retry` so the serving tier can share it; the
/// engine re-exports it here for compatibility.
pub use spcube_common::retry::Backoff;

/// How many attempts a task gets, and what failed attempts cost. Replaces
/// the engine's former hard-coded attempt loop.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum attempts per task before the whole job aborts with
    /// [`Error::JobFailed`] (Hadoop's `mapreduce.map.maxattempts`).
    pub max_attempts: u32,
    /// Simulated delay between attempts.
    pub backoff: Backoff,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff: Backoff::Exponential {
                base_s: 1.0,
                factor: 2.0,
            },
        }
    }
}

impl RetryPolicy {
    /// Simulated seconds of backoff after failed attempt `attempt`
    /// (1-based). Delegates to [`Backoff::delay_after`].
    pub fn delay_after(&self, attempt: u32) -> f64 {
        self.backoff.delay_after(attempt)
    }

    /// Reject zero attempt budgets and negative/NaN delays.
    pub fn validate(&self) -> Result<()> {
        if self.max_attempts == 0 {
            return Err(Error::Config(
                "retry policy needs at least one attempt".into(),
            ));
        }
        self.backoff.validate()
    }
}

/// Speculative-execution policy: launch a backup attempt for tasks that
/// run slower than `slack ×` the phase's median task time, keep the
/// earlier finisher, and record the loser's time as wasted work.
#[derive(Debug, Clone)]
pub struct SpeculationConfig {
    /// Whether backups are launched at all (off by default, like the
    /// paper's Hadoop setup for measured runs).
    pub enabled: bool,
    /// Straggler slack: a backup launches once a task has run for
    /// `slack × median` seconds without finishing. Must be `>= 1.0`.
    pub slack: f64,
}

impl Default for SpeculationConfig {
    fn default() -> SpeculationConfig {
        SpeculationConfig {
            enabled: false,
            slack: 1.5,
        }
    }
}

impl SpeculationConfig {
    /// Reject NaN or sub-1.0 slack factors.
    pub fn validate(&self) -> Result<()> {
        if self.slack.is_nan() || self.slack < 1.0 {
            return Err(Error::Config(format!(
                "speculation slack must be >= 1.0, got {}",
                self.slack
            )));
        }
        Ok(())
    }
}

/// Recovery counters accumulated while executing one round; copied into
/// `JobMetrics` at the end.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryCounters {
    /// Failed task attempts that were retried.
    pub task_retries: u64,
    /// Tasks (or completed task outputs) lost to machine failures.
    pub tasks_lost: u64,
    /// Tasks re-executed on another machine after a loss.
    pub re_executions: u64,
    /// Speculative backup attempts launched.
    pub speculative_launches: u64,
    /// Simulated seconds of discarded work: lost map outputs, killed
    /// attempts, and losing speculative twins.
    pub wasted_seconds: f64,
}

/// The unified fault path both phases run through: straggler slowdown,
/// retry/backoff accounting, and speculative backups, applied to a
/// phase's per-task base times.
pub(crate) struct PhaseFaults<'a> {
    pub plan: &'a FaultPlan,
    pub retry: &'a RetryPolicy,
    pub speculation: &'a SpeculationConfig,
    pub job: &'a str,
    /// Observability session; retry/speculation events are emitted at the
    /// exact sites the matching `RecoveryCounters` fields increment, so
    /// trace event counts always equal the job's metrics.
    pub obs: &'a ObsHandle,
    /// Round span the fault events hang off.
    pub parent: SpanId,
}

impl PhaseFaults<'_> {
    /// Charge faults against each task's fault-free `base` seconds.
    /// Returns per-task completion seconds; fails with
    /// [`Error::JobFailed`] when a task exhausts its retry budget.
    pub fn charge(
        &self,
        phase: Phase,
        base: &[f64],
        rec: &mut RecoveryCounters,
    ) -> Result<Vec<f64>> {
        // Attempt time per task: base, slowed for injected stragglers.
        let attempt_secs: Vec<f64> = base
            .iter()
            .enumerate()
            .map(|(t, &b)| {
                if self.plan.is_straggler(self.job, phase, t) {
                    b * self.plan.straggler_factor
                } else {
                    b
                }
            })
            .collect();
        let median = median(&attempt_secs);

        let mut times = Vec::with_capacity(base.len());
        for (t, &attempt_s) in attempt_secs.iter().enumerate() {
            let mut total = 0.0;
            let mut succeeded = false;
            for attempt in 1..=self.retry.max_attempts {
                if self.plan.attempt_fails(self.job, phase, t, attempt) {
                    rec.task_retries += 1;
                    self.obs.event(
                        names::ENGINE_TASK_RETRY,
                        self.parent,
                        &[
                            ("phase", phase.name().to_string()),
                            ("task", t.to_string()),
                            ("attempt", attempt.to_string()),
                        ],
                    );
                    rec.wasted_seconds += attempt_s;
                    total += attempt_s + self.retry.delay_after(attempt);
                } else {
                    total += self.finish_attempt(phase, t, attempt_s, base[t], median, rec);
                    succeeded = true;
                    break;
                }
            }
            if !succeeded {
                return Err(Error::JobFailed {
                    job: self.job.to_string(),
                    phase: phase.name().to_string(),
                    task: t,
                    attempts: self.retry.max_attempts,
                });
            }
            times.push(total);
        }
        Ok(times)
    }

    /// Completion time of a successful attempt, after speculative
    /// execution has had its say.
    fn finish_attempt(
        &self,
        phase: Phase,
        task: usize,
        attempt_s: f64,
        base: f64,
        median: f64,
        rec: &mut RecoveryCounters,
    ) -> f64 {
        let spec = self.speculation;
        if !spec.enabled || median <= 0.0 || attempt_s <= spec.slack * median {
            return attempt_s;
        }
        // The backup launches once the task is `slack × median` late and
        // runs at healthy (non-straggler) speed on another machine.
        let backup_start = spec.slack * median;
        let backup_finish = backup_start + base;
        rec.speculative_launches += 1;
        self.obs.event(
            names::ENGINE_TASK_SPECULATE,
            self.parent,
            &[
                ("phase", phase.name().to_string()),
                ("task", task.to_string()),
            ],
        );
        if backup_finish < attempt_s {
            // Backup wins; the original is killed at the backup's finish.
            rec.wasted_seconds += backup_finish;
            backup_finish
        } else {
            // Original wins; the backup ran for nothing.
            rec.wasted_seconds += attempt_s - backup_start;
            attempt_s
        }
    }
}

fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("task times are not NaN"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let plan = FaultPlan::default();
        for t in 0..50 {
            assert!(!plan.attempt_fails("job", Phase::Map, t, 1));
            assert!(!plan.is_straggler("job", Phase::Reduce, t));
        }
        assert!(plan.lost_machines("job", Phase::Map, 8).is_empty());
    }

    #[test]
    fn draws_are_deterministic_and_phase_scoped() {
        let plan = FaultPlan {
            task_failure_prob: 0.5,
            ..FaultPlan::default()
        };
        let map_draws: Vec<bool> = (0..64)
            .map(|t| plan.attempt_fails("j", Phase::Map, t, 1))
            .collect();
        let again: Vec<bool> = (0..64)
            .map(|t| plan.attempt_fails("j", Phase::Map, t, 1))
            .collect();
        assert_eq!(map_draws, again);
        let reduce_draws: Vec<bool> = (0..64)
            .map(|t| plan.attempt_fails("j", Phase::Reduce, t, 1))
            .collect();
        assert_ne!(map_draws, reduce_draws, "phases draw independently");
        assert!(map_draws.iter().filter(|&&b| b).count() > 10);
    }

    #[test]
    fn seed_changes_the_schedule() {
        let a = FaultPlan {
            task_failure_prob: 0.5,
            ..FaultPlan::default()
        };
        let b = FaultPlan {
            task_failure_prob: 0.5,
            seed: 99,
            ..FaultPlan::default()
        };
        let da: Vec<bool> = (0..64)
            .map(|t| a.attempt_fails("j", Phase::Map, t, 1))
            .collect();
        let db: Vec<bool> = (0..64)
            .map(|t| b.attempt_fails("j", Phase::Map, t, 1))
            .collect();
        assert_ne!(da, db);
    }

    #[test]
    fn only_job_scopes_injection() {
        let plan = FaultPlan {
            task_failure_prob: 1.0,
            only_job: Some("sketch".into()),
            ..FaultPlan::default()
        };
        assert!(plan.attempt_fails("sp-sketch", Phase::Map, 0, 1));
        assert!(!plan.attempt_fails("sp-cube", Phase::Map, 0, 1));
    }

    #[test]
    fn lost_machines_filters_phase_job_and_range() {
        let plan = FaultPlan {
            machine_failures: vec![
                MachineFailure {
                    job: None,
                    phase: Phase::Map,
                    machine: 2,
                },
                MachineFailure {
                    job: None,
                    phase: Phase::Map,
                    machine: 2,
                },
                MachineFailure {
                    job: None,
                    phase: Phase::Reduce,
                    machine: 1,
                },
                MachineFailure {
                    job: Some("cube".into()),
                    phase: Phase::Map,
                    machine: 3,
                },
                MachineFailure {
                    job: None,
                    phase: Phase::Map,
                    machine: 99,
                },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(plan.lost_machines("sp-cube", Phase::Map, 8), vec![2, 3]);
        assert_eq!(plan.lost_machines("sp-sketch", Phase::Map, 8), vec![2]);
        assert_eq!(plan.lost_machines("sp-cube", Phase::Reduce, 8), vec![1]);
    }

    #[test]
    fn validation_rejects_bad_numbers() {
        let nan_prob = FaultPlan {
            task_failure_prob: f64::NAN,
            ..FaultPlan::default()
        };
        assert!(nan_prob.validate().is_err());
        let neg_prob = FaultPlan {
            straggler_prob: -0.1,
            ..FaultPlan::default()
        };
        assert!(neg_prob.validate().is_err());
        let over_prob = FaultPlan {
            task_failure_prob: 1.5,
            ..FaultPlan::default()
        };
        assert!(over_prob.validate().is_err());
        let small_factor = FaultPlan {
            straggler_factor: 0.5,
            ..FaultPlan::default()
        };
        assert!(small_factor.validate().is_err());
        let neg_detect = FaultPlan {
            detection_s: -1.0,
            ..FaultPlan::default()
        };
        assert!(neg_detect.validate().is_err());
        assert!(FaultPlan::default().validate().is_ok());
    }

    #[test]
    fn retry_policy_backoff_schedules() {
        let none = RetryPolicy {
            max_attempts: 3,
            backoff: Backoff::None,
        };
        assert_eq!(none.delay_after(1), 0.0);
        let fixed = RetryPolicy {
            max_attempts: 3,
            backoff: Backoff::Fixed(2.5),
        };
        assert_eq!(fixed.delay_after(2), 2.5);
        let exp = RetryPolicy::default();
        assert_eq!(exp.delay_after(1), 1.0);
        assert_eq!(exp.delay_after(2), 2.0);
        assert_eq!(exp.delay_after(3), 4.0);
        assert!(RetryPolicy {
            max_attempts: 0,
            backoff: Backoff::None
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            max_attempts: 1,
            backoff: Backoff::Fixed(-1.0)
        }
        .validate()
        .is_err());
    }

    #[test]
    fn speculation_takes_the_earlier_finisher() {
        let plan = FaultPlan::default();
        let retry = RetryPolicy::default();
        let spec = SpeculationConfig {
            enabled: true,
            slack: 1.5,
        };
        let obs = ObsHandle::default();
        let path = PhaseFaults {
            plan: &plan,
            retry: &retry,
            speculation: &spec,
            job: "j",
            obs: &obs,
            parent: SpanId::ROOT,
        };
        let mut rec = RecoveryCounters::default();
        // Four healthy 10 s tasks and one 100 s straggler (pre-slowed base):
        // the backup launches at 15 s and finishes at 15 + 100 s? No — base
        // here is already the task's own fault-free time, so the backup of
        // the 100 s task also needs 100 s and the original (100 s) wins.
        let base = [10.0, 10.0, 10.0, 10.0, 100.0];
        let times = path.charge(Phase::Map, &base, &mut rec).unwrap();
        assert_eq!(
            times[4], 100.0,
            "original finishes before its equally-slow backup"
        );
        assert_eq!(rec.speculative_launches, 1);
        assert!(rec.wasted_seconds > 0.0);
    }

    #[test]
    fn speculation_rescues_injected_stragglers() {
        // With straggling injected at prob 1.0 the attempt time is 10×
        // base, but the backup runs at base speed: completion is capped at
        // slack × median + base instead of 10 × base.
        let plan = FaultPlan {
            straggler_prob: 1.0,
            straggler_factor: 10.0,
            ..FaultPlan::default()
        };
        let retry = RetryPolicy::default();
        let spec = SpeculationConfig {
            enabled: true,
            slack: 1.5,
        };
        let obs = ObsHandle::default();
        let path = PhaseFaults {
            plan: &plan,
            retry: &retry,
            speculation: &spec,
            job: "j",
            obs: &obs,
            parent: SpanId::ROOT,
        };
        let mut rec = RecoveryCounters::default();
        let base = [10.0, 10.0, 10.0];
        let times = path.charge(Phase::Map, &base, &mut rec).unwrap();
        // median attempt = 100, so no attempt exceeds 1.5 × median — all
        // straggle together and no backup launches.
        assert_eq!(rec.speculative_launches, 0);
        assert!(times.iter().all(|&t| (t - 100.0).abs() < 1e-9));

        // Mixed phase: only task 1 straggles (large seed search not needed;
        // craft via only_job trick is overkill — use explicit plan draws).
        let plan = FaultPlan {
            straggler_prob: 0.45,
            straggler_factor: 10.0,
            ..FaultPlan::default()
        };
        let path = PhaseFaults {
            plan: &plan,
            retry: &retry,
            speculation: &spec,
            job: "j",
            obs: &obs,
            parent: SpanId::ROOT,
        };
        let stragglers: Vec<usize> = (0..8)
            .filter(|&t| plan.is_straggler("j", Phase::Map, t))
            .collect();
        assert!(
            !stragglers.is_empty() && stragglers.len() < 8,
            "seeded draws give a mixed phase: {stragglers:?}"
        );
        let mut rec = RecoveryCounters::default();
        let base = [10.0; 8];
        let times = path.charge(Phase::Map, &base, &mut rec).unwrap();
        assert_eq!(rec.speculative_launches as usize, stragglers.len());
        for &t in &stragglers {
            assert_eq!(
                times[t],
                1.5 * 10.0 + 10.0,
                "backup wins: slack × median + base"
            );
        }
        assert!(rec.wasted_seconds > 0.0);
    }

    #[test]
    fn exhausted_retries_fail_typed() {
        let plan = FaultPlan {
            task_failure_prob: 1.0,
            ..FaultPlan::default()
        };
        let retry = RetryPolicy {
            max_attempts: 3,
            backoff: Backoff::None,
        };
        let spec = SpeculationConfig::default();
        let obs = ObsHandle::default();
        let path = PhaseFaults {
            plan: &plan,
            retry: &retry,
            speculation: &spec,
            job: "cube",
            obs: &obs,
            parent: SpanId::ROOT,
        };
        let mut rec = RecoveryCounters::default();
        let err = path.charge(Phase::Reduce, &[1.0], &mut rec).unwrap_err();
        match err {
            Error::JobFailed {
                job,
                phase,
                task,
                attempts,
            } => {
                assert_eq!(job, "cube");
                assert_eq!(phase, "reduce");
                assert_eq!(task, 0);
                assert_eq!(attempts, 3);
            }
            other => panic!("expected JobFailed, got {other}"),
        }
    }

    #[test]
    fn backoff_is_charged_on_retries() {
        let plan = FaultPlan {
            task_failure_prob: 0.6,
            ..FaultPlan::default()
        };
        let no_backoff = RetryPolicy {
            max_attempts: 24,
            backoff: Backoff::None,
        };
        let with_backoff = RetryPolicy {
            max_attempts: 24,
            backoff: Backoff::Fixed(7.0),
        };
        let spec = SpeculationConfig::default();
        let obs = ObsHandle::default();
        let base = vec![1.0; 32];

        let mut rec_a = RecoveryCounters::default();
        let a = PhaseFaults {
            plan: &plan,
            retry: &no_backoff,
            speculation: &spec,
            job: "j",
            obs: &obs,
            parent: SpanId::ROOT,
        }
        .charge(Phase::Map, &base, &mut rec_a)
        .unwrap();
        let mut rec_b = RecoveryCounters::default();
        let b = PhaseFaults {
            plan: &plan,
            retry: &with_backoff,
            speculation: &spec,
            job: "j",
            obs: &obs,
            parent: SpanId::ROOT,
        }
        .charge(Phase::Map, &base, &mut rec_b)
        .unwrap();
        assert_eq!(
            rec_a.task_retries, rec_b.task_retries,
            "same schedule, same retries"
        );
        assert!(rec_a.task_retries > 0);
        let (sum_a, sum_b) = (a.iter().sum::<f64>(), b.iter().sum::<f64>());
        let expected_extra = rec_a.task_retries as f64 * 7.0;
        assert!((sum_b - sum_a - expected_extra).abs() < 1e-9);
    }
}
