//! Job execution.
//!
//! Beyond the happy path (map → shuffle → reduce with exact byte
//! accounting), execution runs through the fault layer in `fault.rs`:
//! both phases share one fault path (stragglers, per-attempt failures with
//! retry/backoff, speculative backups), and scheduled machine losses
//! really lose the dead machine's map output — the engine re-executes the
//! map closure on a surviving machine and ships the regenerated output,
//! so exactly-once semantics under recovery are exercised for real, not
//! just charged to the cost model.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use spcube_common::sync::lock_or_recover;
use spcube_common::{Error, Result};
use spcube_obs::{names, SpanId};

use crate::config::ClusterConfig;
use crate::context::{MapContext, ReduceContext};
use crate::fault::{Phase, PhaseFaults, RecoveryCounters};
use crate::job::{LargeGroupBehavior, MrJob};
use crate::metrics::{JobMetrics, Stopwatch};

/// One write-once output slot per task, claimed by worker threads.
type TaskSlots<T> = Vec<Mutex<Option<T>>>;

/// The outcome of one executed round: real reducer outputs plus metrics.
#[derive(Debug)]
pub struct JobResult<O> {
    /// Output records, per reducer (index = reducer id).
    pub outputs: Vec<Vec<O>>,
    /// Counters and simulated times for the round.
    pub metrics: JobMetrics,
}

impl<O> JobResult<O> {
    /// Flatten all reducers' outputs into one vector (reducer order).
    pub fn into_flat_outputs(self) -> Vec<O> {
        self.outputs.into_iter().flatten().collect()
    }
}

struct MapTaskOut<K, V> {
    per_reducer: Vec<Vec<(K, V)>>,
    records_in: u64,
    records_out: u64,
    bytes_out: u64,
    work_units: u64,
}

impl<K, V> MapTaskOut<K, V> {
    /// Fault-free simulated seconds of this map task under `cost`.
    fn base_seconds(&self, cost: &crate::cost::CostModel) -> f64 {
        self.records_in as f64 * cost.map_cpu_per_record_s
            + self.work_units as f64 * cost.cpu_per_work_unit_s
            + self.records_out as f64 * cost.cpu_per_emit_s
            + self.bytes_out as f64 / cost.map_disk_bytes_per_s
    }
}

/// Execute one MapReduce round of `job` over `inputs` on the simulated
/// cluster, with `reducers` reduce tasks.
///
/// The input is split evenly across the cluster's `k` machines ("we assume
/// that the n tuples of the input are equally loaded to the machines",
/// Section 2.3). Map tasks run concurrently on host threads; all counters
/// and simulated times are independent of host scheduling.
pub fn run_job<J: MrJob>(
    cluster: &ClusterConfig,
    job: &J,
    inputs: &[J::Input],
    reducers: usize,
) -> Result<JobResult<J::Output>> {
    if reducers == 0 {
        return Err(Error::Config("job needs at least one reducer".into()));
    }
    cluster.validate()?;
    let name = job.name();
    // One span per round; closed here so error exits inside `run_round`
    // never leave it dangling (the trace validator flags unclosed spans).
    let obs = &cluster.obs;
    let round = obs.span(
        names::ENGINE_ROUND,
        SpanId::ROOT,
        &[("job", name.clone()), ("reducers", reducers.to_string())],
    );
    let result = run_round(cluster, job, inputs, reducers, name, round);
    match &result {
        Ok(r) => obs.end(
            round,
            &[("sim_s", format!("{:.6}", r.metrics.simulated_seconds))],
        ),
        Err(e) => obs.end(round, &[("error", e.to_string())]),
    }
    result
}

fn run_round<J: MrJob>(
    cluster: &ClusterConfig,
    job: &J,
    inputs: &[J::Input],
    reducers: usize,
    name: String,
    round: SpanId,
) -> Result<JobResult<J::Output>> {
    let wall_start = Stopwatch::start();
    let k = cluster.machines;
    let cost = &cluster.cost;
    let obs = &cluster.obs;
    let mut rec = RecoveryCounters::default();
    let faults = PhaseFaults {
        plan: &cluster.faults,
        retry: &cluster.retry,
        speculation: &cluster.speculation,
        job: &name,
        obs,
        parent: round,
    };

    // ---- Map phase -------------------------------------------------------
    let chunk = inputs.len().div_ceil(k).max(1);
    let splits: Vec<&[J::Input]> = (0..k)
        .map(|i| {
            let lo = (i * chunk).min(inputs.len());
            let hi = ((i + 1) * chunk).min(inputs.len());
            inputs.get(lo..hi).unwrap_or(&[])
        })
        .collect();

    let map_slots: TaskSlots<MapTaskOut<J::Key, J::Value>> =
        (0..k).map(|_| Mutex::new(None)).collect();
    let next_task = AtomicUsize::new(0);
    let workers = cluster.threads.min(k).max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let t = next_task.fetch_add(1, Ordering::Relaxed);
                let (Some(split), Some(slot)) = (splits.get(t), map_slots.get(t)) else {
                    break; // t >= k: no tasks left
                };
                let out = run_map_task(job, split, t, reducers);
                *lock_or_recover(slot) = Some(out);
            });
        }
    });

    let mut map_outs: Vec<MapTaskOut<J::Key, J::Value>> = Vec::with_capacity(k);
    for slot in map_slots {
        let out = slot
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .ok_or_else(|| Error::Internal("map task produced no output".into()))?;
        map_outs.push(out);
    }

    // Unified fault path: stragglers, retries/backoff, speculation.
    let map_base: Vec<f64> = map_outs.iter().map(|o| o.base_seconds(cost)).collect();
    let mut map_times = faults.charge(Phase::Map, &map_base, &mut rec)?;

    // Machine loss during the map phase (Hadoop semantics): the dead
    // machine's completed map output lives on its local disk and is gone.
    // A surviving machine re-executes the task; the fresh output REPLACES
    // the lost one, so downstream state is exactly-once by construction.
    let lost_map = cluster.faults.lost_machines(&name, Phase::Map, k);
    if !lost_map.is_empty() {
        if lost_map.len() >= k {
            return Err(Error::Config(format!(
                "fault schedule kills all {k} machines during the map phase of `{name}`"
            )));
        }
        let mut busy = map_times.clone();
        for &m in &lost_map {
            // Machine ids from the fault plan are < k by construction;
            // `get` keeps a broken plan from crashing the run.
            let Some(split) = splits.get(m) else { continue };
            obs.event(
                names::ENGINE_MACHINE_LOST,
                round,
                &[("phase", "map".to_string()), ("machine", m.to_string())],
            );
            rec.tasks_lost += 1;
            rec.wasted_seconds += map_times.get(m).copied().unwrap_or(0.0);
            let host = (1..k)
                .map(|i| (m + i) % k)
                .find(|i| !lost_map.contains(i))
                .ok_or_else(|| Error::Internal("no surviving machine to re-execute on".into()))?;
            let out = run_map_task(job, split, m, reducers);
            let reexec_secs = out.base_seconds(cost);
            // The re-execution waits for the loss to be detected and for
            // the host to finish its own task, then runs at healthy speed.
            let start = (map_times.get(m).copied().unwrap_or(0.0) + cluster.faults.detection_s)
                .max(busy.get(host).copied().unwrap_or(0.0));
            let end = start + reexec_secs;
            if let Some(b) = busy.get_mut(host) {
                *b = end;
            }
            if let Some(t) = map_times.get_mut(m) {
                *t = end;
            }
            if let Some(o) = map_outs.get_mut(m) {
                *o = out;
            }
            rec.re_executions += 1;
        }
    }

    // Machine loss during the reduce phase, part 1: the dead machine's map
    // output is lost mid-shuffle and must be regenerated before the
    // rescheduled consumers can proceed. Re-execute for real (the shuffle
    // below ships the regenerated output); time is charged in part 2.
    let lost_reduce = cluster.faults.lost_machines(&name, Phase::Reduce, k);
    let mut reduce_recovery = vec![0.0f64; k];
    for &m in &lost_reduce {
        let Some(split) = splits.get(m) else { continue };
        obs.event(
            names::ENGINE_MACHINE_LOST,
            round,
            &[("phase", "reduce".to_string()), ("machine", m.to_string())],
        );
        rec.tasks_lost += 1; // the lost map output
        let out = run_map_task(job, split, m, reducers);
        let reexec_secs = out.base_seconds(cost);
        let refetch_secs = out.bytes_out as f64 / cost.net_bytes_per_s;
        if let Some(r) = reduce_recovery.get_mut(m) {
            *r = cluster.faults.detection_s + reexec_secs + refetch_secs;
        }
        if let Some(o) = map_outs.get_mut(m) {
            *o = out;
        }
        rec.re_executions += 1;
    }

    let mut input_records = 0u64;
    let mut map_output_records = 0u64;
    let mut map_output_bytes = 0u64;
    for out in &map_outs {
        input_records += out.records_in;
        map_output_records += out.records_out;
        map_output_bytes += out.bytes_out;
    }

    // ---- Shuffle ---------------------------------------------------------
    // Receive each reducer's partitions in map-task order (deterministic).
    let mut reducer_inputs: Vec<Vec<(J::Key, J::Value)>> =
        (0..reducers).map(|_| Vec::new()).collect();
    for out in map_outs {
        for (r, part) in out.per_reducer.into_iter().enumerate() {
            if let Some(input) = reducer_inputs.get_mut(r) {
                input.extend(part);
            }
        }
    }
    let reducer_input_bytes: Vec<u64> = reducer_inputs
        .iter()
        .map(|pairs| {
            pairs
                .iter()
                .map(|(key, value)| job.key_bytes(key) + job.value_bytes(value))
                .sum()
        })
        .collect();
    let shuffle_seconds = reducer_input_bytes
        .iter()
        .map(|&b| b as f64 / cost.net_bytes_per_s)
        .fold(0.0f64, f64::max);

    // ---- Reduce phase ----------------------------------------------------
    struct ReduceTaskOut<O> {
        outputs: Vec<O>,
        out_bytes: u64,
        secs: f64,
        spilled: u64,
        largest_group: u64,
        failure: Option<Error>,
    }

    let reduce_slots: Vec<Mutex<Option<ReduceTaskOut<J::Output>>>> =
        (0..reducers).map(|_| Mutex::new(None)).collect();
    let reducer_inputs: TaskSlots<Vec<(J::Key, J::Value)>> = reducer_inputs
        .into_iter()
        .map(|v| Mutex::new(Some(v)))
        .collect();
    let next_red = AtomicUsize::new(0);
    let red_workers = cluster.threads.min(reducers).max(1);

    std::thread::scope(|scope| {
        for _ in 0..red_workers {
            scope.spawn(|| loop {
                let r = next_red.fetch_add(1, Ordering::Relaxed);
                let (Some(input_slot), Some(out_slot)) =
                    (reducer_inputs.get(r), reduce_slots.get(r))
                else {
                    break; // r >= reducers: no tasks left
                };
                let Some(pairs) = lock_or_recover(input_slot).take() else {
                    break; // input already claimed (can only happen on a bug)
                };
                let in_bytes = reducer_input_bytes.get(r).copied().unwrap_or(0);

                // Group values by key; BTreeMap gives the sorted key order
                // Hadoop guarantees to reducers.
                let mut groups: BTreeMap<J::Key, Vec<J::Value>> = BTreeMap::new();
                let n_values = pairs.len() as u64;
                for (key, value) in pairs {
                    groups.entry(key).or_default().push(value);
                }

                // Memory model: whole-input overflow spills; an oversized
                // single group spills or kills the job, per the job policy.
                let mut spilled = in_bytes.saturating_sub(cluster.memory_bytes);
                let mut largest_group = 0u64;
                let mut failure = None;
                for (key, values) in &groups {
                    largest_group = largest_group.max(values.len() as u64);
                    let group_bytes: u64 =
                        values.iter().map(|v| job.value_bytes(v)).sum::<u64>() + job.key_bytes(key);
                    if group_bytes > cluster.memory_bytes {
                        match job.large_group_behavior() {
                            LargeGroupBehavior::Spill => {
                                // Aggregate through disk: write + read back.
                                spilled += 2 * group_bytes;
                            }
                            LargeGroupBehavior::Fail => {
                                failure = Some(Error::OutOfMemory {
                                    machine: r,
                                    detail: format!(
                                        "key group of {} bytes exceeds machine memory of {} bytes",
                                        group_bytes, cluster.memory_bytes
                                    ),
                                });
                                break;
                            }
                        }
                    }
                }

                let mut outputs = Vec::new();
                let mut work_units = 0u64;
                if failure.is_none() {
                    for (key, values) in groups {
                        let mut ctx = ReduceContext::new(&mut outputs, r);
                        job.reduce(&mut ctx, key, values);
                        work_units += ctx.work_units;
                    }
                }
                let out_bytes: u64 = outputs.iter().map(|o| job.output_bytes(o)).sum();
                // Fault-free base seconds; the shared fault path charges
                // stragglers/retries/speculation afterwards.
                let secs = n_values as f64
                    * (cost.sort_cpu_per_value_s + cost.reduce_cpu_per_value_s)
                    * job.reduce_cost_factor()
                    + work_units as f64 * cost.cpu_per_work_unit_s
                    + spilled as f64 / cost.spill_bytes_per_s
                    + out_bytes as f64 / cost.out_disk_bytes_per_s;
                *lock_or_recover(out_slot) = Some(ReduceTaskOut {
                    outputs,
                    out_bytes,
                    secs,
                    spilled,
                    largest_group,
                    failure,
                });
            });
        }
    });

    let mut outputs = Vec::with_capacity(reducers);
    let mut reducer_output_bytes = Vec::with_capacity(reducers);
    let mut reduce_base = Vec::with_capacity(reducers);
    let mut spilled_bytes = 0u64;
    let mut largest_group_values = 0u64;
    let mut output_records = 0u64;
    for slot in reduce_slots {
        let task = slot
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .ok_or_else(|| Error::Internal("reduce task produced no output".into()))?;
        if let Some(err) = task.failure {
            return Err(err);
        }
        spilled_bytes += task.spilled;
        largest_group_values = largest_group_values.max(task.largest_group);
        output_records += task.outputs.len() as u64;
        reducer_output_bytes.push(task.out_bytes);
        reduce_base.push(task.secs);
        outputs.push(task.outputs);
    }

    // Same fault path as the map phase (stragglers, retries, speculation
    // apply to reduce tasks too).
    let mut reduce_times = faults.charge(Phase::Reduce, &reduce_base, &mut rec)?;

    // Machine loss during the reduce phase, part 2: the in-flight reduce
    // task dies halfway, waits for detection + map-output regeneration +
    // re-fetch (charged in part 1's `reduce_recovery`), then re-runs.
    let mut shuffle_recovery = 0.0f64;
    for &m in &lost_reduce {
        let recovery = reduce_recovery.get(m).copied().unwrap_or(0.0);
        if let Some(t) = reduce_times.get_mut(m) {
            let half_done = 0.5 * *t;
            rec.wasted_seconds += half_done;
            rec.tasks_lost += 1; // the killed reduce attempt
            rec.re_executions += 1;
            *t += half_done + recovery;
        } else {
            // No reduce task ran on the dead machine; the regeneration
            // still delays whichever reducers were fetching from it.
            shuffle_recovery = shuffle_recovery.max(recovery);
        }
    }

    let simulated_seconds = cost.round_overhead_s
        + map_times.iter().copied().fold(0.0f64, f64::max)
        + shuffle_seconds
        + shuffle_recovery
        + reduce_times.iter().copied().fold(0.0f64, f64::max);

    // Per-task spans, recorded post-phase on the driver thread in task
    // order so the trace is deterministic regardless of host scheduling.
    if obs.enabled() {
        for (phase, times) in [("map", &map_times), ("reduce", &reduce_times)] {
            let hist = obs.histogram(names::ENGINE_TASK_SECONDS, &[("phase", phase.to_string())]);
            for (t, &secs) in times.iter().enumerate() {
                let span = obs.span(
                    names::ENGINE_TASK,
                    round,
                    &[("phase", phase.to_string()), ("task", t.to_string())],
                );
                obs.end(span, &[("sim_s", format!("{secs:.6}"))]);
                if let Some(h) = &hist {
                    h.record(secs);
                }
            }
        }
    }

    Ok(JobResult {
        outputs,
        metrics: JobMetrics {
            name,
            map_tasks: k,
            reduce_tasks: reducers,
            input_records,
            map_output_records,
            map_output_bytes,
            reducer_input_bytes,
            reducer_output_bytes,
            output_records,
            spilled_bytes,
            task_retries: rec.task_retries,
            tasks_lost: rec.tasks_lost,
            re_executions: rec.re_executions,
            speculative_launches: rec.speculative_launches,
            wasted_seconds: rec.wasted_seconds,
            fallback_events: 0,
            largest_group_values,
            map_times,
            reduce_times,
            shuffle_seconds,
            simulated_seconds,
            wall_seconds: wall_start.seconds(),
        },
    })
}

fn run_map_task<J: MrJob>(
    job: &J,
    split: &[J::Input],
    task: usize,
    reducers: usize,
) -> MapTaskOut<J::Key, J::Value> {
    let mut buffer: Vec<(J::Key, J::Value)> = Vec::new();
    let mut ctx = MapContext::new(&mut buffer, task);
    job.map_split(&mut ctx, split);
    let work_units = ctx.work_units;

    // Combiner: fold each key's buffered values within this task, like
    // Hadoop's combiner running over the task's (sorted) spill output.
    let combined: Vec<(J::Key, J::Value)> = if job.has_combiner() {
        // BTreeMap: combined records leave the task in sorted key order,
        // independent of hasher state (spcheck rule R3).
        let mut by_key: BTreeMap<J::Key, Vec<J::Value>> = BTreeMap::new();
        for (key, value) in buffer {
            by_key.entry(key).or_default().push(value);
        }
        let mut flat = Vec::new();
        for (key, mut values) in by_key {
            job.combine(&key, &mut values);
            for value in values {
                flat.push((key.clone(), value));
            }
        }
        flat
    } else {
        buffer
    };

    let mut per_reducer: Vec<Vec<(J::Key, J::Value)>> = (0..reducers).map(|_| Vec::new()).collect();
    let mut bytes_out = 0u64;
    let records_out = combined.len() as u64;
    for (key, value) in combined {
        bytes_out += job.key_bytes(&key) + job.value_bytes(&value);
        let r = job.partition(&key, reducers);
        debug_assert!(r < reducers, "partitioner out of range");
        // An out-of-range partition is a job bug; `get_mut` keeps it from
        // crashing a release serving path (the debug_assert catches it in
        // tests).
        if let Some(bucket) = per_reducer.get_mut(r) {
            bucket.push((key, value));
        }
    }

    MapTaskOut {
        per_reducer,
        records_in: split.len() as u64,
        records_out,
        bytes_out,
        work_units,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::LargeGroupBehavior;

    /// Word-count style job over integer inputs: key = value % buckets.
    struct ModCount {
        buckets: u64,
        combine: bool,
        fail_large: bool,
    }

    impl MrJob for ModCount {
        type Input = u64;
        type Key = u64;
        type Value = u64;
        type Output = (u64, u64);

        fn name(&self) -> String {
            "mod-count".into()
        }

        fn map_split(&self, ctx: &mut MapContext<'_, u64, u64>, split: &[u64]) {
            for &x in split {
                ctx.emit(x % self.buckets, 1);
                ctx.charge(1);
            }
        }

        fn has_combiner(&self) -> bool {
            self.combine
        }

        fn combine(&self, _key: &u64, values: &mut Vec<u64>) {
            let total: u64 = values.iter().sum();
            values.clear();
            values.push(total);
        }

        fn reduce(&self, ctx: &mut ReduceContext<'_, (u64, u64)>, key: u64, values: Vec<u64>) {
            ctx.emit((key, values.iter().sum()));
        }

        fn key_bytes(&self, _k: &u64) -> u64 {
            8
        }

        fn value_bytes(&self, _v: &u64) -> u64 {
            8
        }

        fn output_bytes(&self, _o: &(u64, u64)) -> u64 {
            16
        }

        fn large_group_behavior(&self) -> LargeGroupBehavior {
            if self.fail_large {
                LargeGroupBehavior::Fail
            } else {
                LargeGroupBehavior::Spill
            }
        }
    }

    fn cluster() -> ClusterConfig {
        ClusterConfig::new(4, 1000)
    }

    #[test]
    fn counts_are_exact() {
        let inputs: Vec<u64> = (0..1000).collect();
        let job = ModCount {
            buckets: 7,
            combine: false,
            fail_large: false,
        };
        let res = run_job(&cluster(), &job, &inputs, 3).expect("run");
        let mut counts: Vec<(u64, u64)> = res.into_flat_outputs();
        counts.sort();
        let expect: Vec<(u64, u64)> = (0..7)
            .map(|b| (b, (0..1000u64).filter(|x| x % 7 == b).count() as u64))
            .collect();
        assert_eq!(counts, expect);
    }

    #[test]
    fn combiner_reduces_records_not_results() {
        let inputs: Vec<u64> = (0..1000).collect();
        let plain = ModCount {
            buckets: 7,
            combine: false,
            fail_large: false,
        };
        let comb = ModCount {
            buckets: 7,
            combine: true,
            fail_large: false,
        };
        let r1 = run_job(&cluster(), &plain, &inputs, 3).expect("run");
        let r2 = run_job(&cluster(), &comb, &inputs, 3).expect("run");
        assert_eq!(r1.metrics.map_output_records, 1000);
        // 4 map tasks × ≤7 keys each.
        assert!(r2.metrics.map_output_records <= 28);
        let mut a = r1.into_flat_outputs();
        let mut b = r2.into_flat_outputs();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn byte_accounting_matches_record_sizes() {
        let inputs: Vec<u64> = (0..100).collect();
        let job = ModCount {
            buckets: 5,
            combine: false,
            fail_large: false,
        };
        let res = run_job(&cluster(), &job, &inputs, 2).expect("run");
        assert_eq!(res.metrics.map_output_bytes, 100 * 16);
        assert_eq!(
            res.metrics.reducer_input_bytes.iter().sum::<u64>(),
            100 * 16
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let inputs: Vec<u64> = (0..5000).collect();
        let job = ModCount {
            buckets: 11,
            combine: true,
            fail_large: false,
        };
        let mut c1 = cluster();
        c1.threads = 1;
        let mut c8 = cluster();
        c8.threads = 8;
        let r1 = run_job(&c1, &job, &inputs, 5).expect("run");
        let r8 = run_job(&c8, &job, &inputs, 5).expect("run");
        assert_eq!(r1.metrics.map_output_bytes, r8.metrics.map_output_bytes);
        assert_eq!(r1.metrics.simulated_seconds, r8.metrics.simulated_seconds);
        assert_eq!(r1.into_flat_outputs(), r8.into_flat_outputs());
    }

    #[test]
    fn large_group_fail_policy_aborts() {
        // All inputs map to one key; memory is tiny.
        let inputs: Vec<u64> = vec![7; 5000];
        let job = ModCount {
            buckets: 1,
            combine: false,
            fail_large: true,
        };
        let mut c = cluster();
        c.memory_bytes = 64;
        let err = run_job(&c, &job, &inputs, 2).expect_err("must fail");
        assert!(matches!(err, Error::OutOfMemory { .. }), "{err}");
    }

    #[test]
    fn large_group_spill_policy_survives_and_charges() {
        let inputs: Vec<u64> = vec![7; 5000];
        let job = ModCount {
            buckets: 1,
            combine: false,
            fail_large: false,
        };
        let mut c = cluster();
        c.memory_bytes = 64;
        let res = run_job(&c, &job, &inputs, 2).expect("run");
        assert!(res.metrics.spilled_bytes > 0);
        assert_eq!(res.metrics.largest_group_values, 5000);
        let counts = res.into_flat_outputs();
        assert_eq!(counts, vec![(0, 5000)]);
    }

    #[test]
    fn empty_input_runs_cleanly() {
        let job = ModCount {
            buckets: 3,
            combine: false,
            fail_large: false,
        };
        let res = run_job(&cluster(), &job, &[], 2).expect("run");
        assert_eq!(res.metrics.input_records, 0);
        assert_eq!(res.metrics.map_output_records, 0);
        assert!(res.into_flat_outputs().is_empty());
    }

    #[test]
    fn zero_reducers_rejected() {
        let job = ModCount {
            buckets: 3,
            combine: false,
            fail_large: false,
        };
        assert!(run_job(&cluster(), &job, &[1, 2], 0).is_err());
    }

    #[test]
    fn invalid_fault_config_rejected_at_run() {
        let job = ModCount {
            buckets: 3,
            combine: false,
            fail_large: false,
        };
        let bad = cluster().with_task_failures(f64::NAN);
        let err = run_job(&bad, &job, &[1, 2], 1).expect_err("must fail");
        assert!(matches!(err, Error::Config(_)), "{err}");
    }

    #[test]
    fn stragglers_scale_task_times() {
        let inputs: Vec<u64> = (0..10000).collect();
        let job = ModCount {
            buckets: 7,
            combine: false,
            fail_large: false,
        };
        let base = run_job(&cluster(), &job, &inputs, 3).expect("run");
        let slow_cluster = cluster().with_stragglers(1.0, 10.0);
        let slow = run_job(&slow_cluster, &job, &inputs, 3).expect("run");
        let base_max = base
            .metrics
            .map_times
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        let slow_max = slow
            .metrics
            .map_times
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        assert!((slow_max / base_max - 10.0).abs() < 1e-6);
        // Reduce tasks go through the same fault path (prob 1.0 slows all).
        let base_red = base
            .metrics
            .reduce_times
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        let slow_red = slow
            .metrics
            .reduce_times
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        assert!((slow_red / base_red - 10.0).abs() < 1e-6);
        assert_eq!(base.metrics.map_output_bytes, slow.metrics.map_output_bytes);
    }

    #[test]
    fn speculation_caps_straggler_cost_and_counts_waste() {
        let inputs: Vec<u64> = (0..10000).collect();
        let job = ModCount {
            buckets: 7,
            combine: false,
            fail_large: false,
        };
        // Mixed stragglers so the phase median stays healthy.
        let slow = cluster().with_stragglers(0.45, 10.0);
        let specd = cluster().with_stragglers(0.45, 10.0).with_speculation(1.5);
        let a = run_job(&slow, &job, &inputs, 3).expect("run");
        let b = run_job(&specd, &job, &inputs, 3).expect("run");
        assert_eq!(a.metrics.speculative_launches, 0);
        assert!(
            b.metrics.speculative_launches > 0,
            "stragglers should trigger backups"
        );
        assert!(b.metrics.wasted_seconds > 0.0);
        assert!(
            b.metrics.simulated_seconds < a.metrics.simulated_seconds,
            "backups should beat 10x stragglers: {} vs {}",
            b.metrics.simulated_seconds,
            a.metrics.simulated_seconds
        );
        // Results are identical either way.
        let (mut ra, mut rb) = (a.into_flat_outputs(), b.into_flat_outputs());
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb);
    }

    #[test]
    fn machine_loss_during_map_reexecutes_and_charges() {
        let inputs: Vec<u64> = (0..8000).collect();
        let job = ModCount {
            buckets: 7,
            combine: true,
            fail_large: false,
        };
        let clean = cluster();
        let lossy = cluster().with_machine_failure(Phase::Map, 1);
        let a = run_job(&clean, &job, &inputs, 3).expect("run");
        let b = run_job(&lossy, &job, &inputs, 3).expect("run");
        assert_eq!(b.metrics.tasks_lost, 1);
        assert_eq!(b.metrics.re_executions, 1);
        assert!(b.metrics.wasted_seconds > 0.0);
        assert!(b.metrics.simulated_seconds > a.metrics.simulated_seconds);
        // The regenerated map output replaces the lost one: same bytes,
        // same results.
        assert_eq!(a.metrics.map_output_bytes, b.metrics.map_output_bytes);
        let (mut ra, mut rb) = (a.into_flat_outputs(), b.into_flat_outputs());
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb);
    }

    #[test]
    fn machine_loss_during_reduce_reschedules_both_sides() {
        let inputs: Vec<u64> = (0..8000).collect();
        let job = ModCount {
            buckets: 7,
            combine: true,
            fail_large: false,
        };
        let clean = cluster();
        let lossy = cluster().with_machine_failure(crate::fault::Phase::Reduce, 0);
        let a = run_job(&clean, &job, &inputs, 3).expect("run");
        let b = run_job(&lossy, &job, &inputs, 3).expect("run");
        // Lost: machine 0's map output AND its in-flight reduce task.
        assert_eq!(b.metrics.tasks_lost, 2);
        assert_eq!(b.metrics.re_executions, 2);
        assert!(b.metrics.wasted_seconds > 0.0);
        assert!(b.metrics.reduce_times[0] > a.metrics.reduce_times[0]);
        let (mut ra, mut rb) = (a.into_flat_outputs(), b.into_flat_outputs());
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb);
    }

    #[test]
    fn machine_loss_on_non_reducer_machine_delays_shuffle_only() {
        let inputs: Vec<u64> = (0..8000).collect();
        let job = ModCount {
            buckets: 7,
            combine: true,
            fail_large: false,
        };
        // Machine 3 holds no reduce task (only 2 reducers).
        let lossy = cluster().with_machine_failure(crate::fault::Phase::Reduce, 3);
        let clean = cluster();
        let a = run_job(&clean, &job, &inputs, 2).expect("run");
        let b = run_job(&lossy, &job, &inputs, 2).expect("run");
        assert_eq!(b.metrics.tasks_lost, 1);
        assert_eq!(b.metrics.re_executions, 1);
        assert_eq!(b.metrics.reduce_times, a.metrics.reduce_times);
        assert!(b.metrics.simulated_seconds > a.metrics.simulated_seconds);
    }

    #[test]
    fn killing_every_machine_is_rejected() {
        let job = ModCount {
            buckets: 3,
            combine: false,
            fail_large: false,
        };
        let mut c = ClusterConfig::new(2, 100);
        c = c
            .with_machine_failure(Phase::Map, 0)
            .with_machine_failure(Phase::Map, 1);
        let err = run_job(&c, &job, &[1, 2, 3], 1).expect_err("must fail");
        assert!(matches!(err, Error::Config(_)), "{err}");
    }

    #[test]
    fn machine_loss_is_deterministic() {
        let inputs: Vec<u64> = (0..5000).collect();
        let job = ModCount {
            buckets: 11,
            combine: true,
            fail_large: false,
        };
        let mk = || {
            cluster()
                .with_machine_failure(Phase::Map, 2)
                .with_machine_failure(crate::fault::Phase::Reduce, 1)
                .with_stragglers(0.3, 4.0)
                .with_task_failures(0.2)
                .with_speculation(1.5)
        };
        let a = run_job(&mk(), &job, &inputs, 4).expect("run");
        let b = run_job(&mk(), &job, &inputs, 4).expect("run");
        assert_eq!(a.metrics.simulated_seconds, b.metrics.simulated_seconds);
        assert_eq!(a.metrics.wasted_seconds, b.metrics.wasted_seconds);
        assert_eq!(a.metrics.task_retries, b.metrics.task_retries);
        assert_eq!(a.into_flat_outputs(), b.into_flat_outputs());
    }

    #[test]
    fn values_arrive_in_map_task_order() {
        // Job that emits its task index; reducer sees task order.
        struct TaskOrder;
        impl MrJob for TaskOrder {
            type Input = u64;
            type Key = u8;
            type Value = usize;
            type Output = Vec<usize>;
            fn name(&self) -> String {
                "task-order".into()
            }
            fn map_split(&self, ctx: &mut MapContext<'_, u8, usize>, split: &[u64]) {
                if !split.is_empty() {
                    ctx.emit(0, ctx.task());
                }
            }
            fn reduce(&self, ctx: &mut ReduceContext<'_, Vec<usize>>, _k: u8, v: Vec<usize>) {
                ctx.emit(v);
            }
            fn key_bytes(&self, _: &u8) -> u64 {
                1
            }
            fn value_bytes(&self, _: &usize) -> u64 {
                8
            }
            fn output_bytes(&self, _: &Vec<usize>) -> u64 {
                8
            }
        }
        let inputs: Vec<u64> = (0..40).collect();
        let mut c = cluster();
        c.threads = 8;
        let res = run_job(&c, &TaskOrder, &inputs, 1).expect("run");
        let orders = res.into_flat_outputs();
        assert_eq!(orders, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn simulated_time_includes_round_overhead() {
        let job = ModCount {
            buckets: 3,
            combine: false,
            fail_large: false,
        };
        let c = cluster();
        let res = run_job(&c, &job, &[], 1).expect("run");
        assert!(res.metrics.simulated_seconds >= c.cost.round_overhead_s);
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use crate::context::{MapContext, ReduceContext};

    struct Sum;
    impl MrJob for Sum {
        type Input = u64;
        type Key = u8;
        type Value = u64;
        type Output = u64;
        fn name(&self) -> String {
            "sum".into()
        }
        fn map_split(&self, ctx: &mut MapContext<'_, u8, u64>, split: &[u64]) {
            for &x in split {
                ctx.emit((x % 3) as u8, x);
            }
        }
        fn reduce(&self, ctx: &mut ReduceContext<'_, u64>, _k: u8, values: Vec<u64>) {
            ctx.emit(values.iter().sum());
        }
        fn key_bytes(&self, _: &u8) -> u64 {
            1
        }
        fn value_bytes(&self, _: &u64) -> u64 {
            8
        }
        fn output_bytes(&self, _: &u64) -> u64 {
            8
        }
    }

    #[test]
    fn task_failures_are_retried_and_charged() {
        let inputs: Vec<u64> = (0..4000).collect();
        let clean = ClusterConfig::new(8, 1000);
        let mut flaky = ClusterConfig::new(8, 1000).with_task_failures(0.5);
        // Budget generous enough that no task plausibly exhausts it.
        flaky.retry.max_attempts = 16;
        let a = run_job(&clean, &Sum, &inputs, 3).expect("run");
        let b = run_job(&flaky, &Sum, &inputs, 3).expect("run");
        // Same results, more simulated time, retries recorded.
        assert!(
            b.metrics.task_retries > 0,
            "expected some retries at 50% failure rate"
        );
        assert!(
            b.metrics.wasted_seconds > 0.0,
            "failed attempts are wasted work"
        );
        assert!(b.metrics.simulated_seconds > a.metrics.simulated_seconds);
        let mut ra = a.into_flat_outputs();
        ra.sort();
        let mut rb = b.into_flat_outputs();
        rb.sort();
        assert_eq!(ra, rb);
    }

    #[test]
    fn exhausted_attempts_abort_the_job() {
        let inputs: Vec<u64> = (0..100).collect();
        let mut cluster = ClusterConfig::new(4, 100).with_task_failures(0.999999);
        cluster.retry.max_attempts = 2;
        let err = run_job(&cluster, &Sum, &inputs, 2).expect_err("must fail");
        assert!(err.to_string().contains("failed 2 attempts"), "{err}");
        assert!(
            matches!(&err, Error::JobFailed { job, attempts: 2, .. } if job == "sum"),
            "{err}"
        );
    }

    #[test]
    fn reduce_tasks_share_the_fault_path() {
        // Scope probabilistic injection to the reduce phase by checking
        // the metrics: with failures on, reduce times grow too.
        let inputs: Vec<u64> = (0..4000).collect();
        let clean = ClusterConfig::new(4, 1000);
        let mut flaky = ClusterConfig::new(4, 1000).with_task_failures(0.5);
        flaky.retry.max_attempts = 16;
        let a = run_job(&clean, &Sum, &inputs, 16).expect("run");
        let b = run_job(&flaky, &Sum, &inputs, 16).expect("run");
        let grew = a
            .metrics
            .reduce_times
            .iter()
            .zip(&b.metrics.reduce_times)
            .any(|(x, y)| y > x);
        assert!(
            grew,
            "at 50% attempt failure some of 16 reduce tasks must retry"
        );
    }

    #[test]
    fn failure_injection_is_deterministic() {
        let inputs: Vec<u64> = (0..4000).collect();
        let flaky = ClusterConfig::new(8, 1000).with_task_failures(0.3);
        let a = run_job(&flaky, &Sum, &inputs, 3).expect("run");
        let b = run_job(&flaky, &Sum, &inputs, 3).expect("run");
        assert_eq!(a.metrics.task_retries, b.metrics.task_retries);
        assert_eq!(a.metrics.simulated_seconds, b.metrics.simulated_seconds);
    }
}
