//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This shim re-implements the subset the workspace's
//! property tests use: the `proptest!` macro (including
//! `#![proptest_config(...)]`), integer-range / tuple / `collection::vec`
//! strategies, `prop_map` / `prop_flat_map`, and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Semantics differences from real proptest: cases are generated from a
//! deterministic per-test seed, and there is **no shrinking** — a failure
//! reports the case number so the run can be reproduced exactly.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! Everything a `use proptest::prelude::*;` test expects in scope.
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

/// Per-test configuration (`ProptestConfig::with_cases(n)`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (what `prop_assert!` produces).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Record a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator backing all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator; same seed, same cases.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)` as signed 128-bit arithmetic so every
    /// integer strategy can share it.
    fn in_span(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "cannot sample from empty range");
        lo + (self.next_u64() as u128 % (hi - lo) as u128) as i128
    }
}

/// A value generator. Unlike real proptest there is no shrink tree; a
/// strategy just maps randomness to values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Derive a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_span(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_span(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

pub mod collection {
    //! `proptest::collection::vec` and its size specification.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `vec(strategy, len)` / `vec(strategy, lo..hi)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.in_span(self.size.lo as i128, self.size.hi as i128) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Driver behind the `proptest!` macro: run `config.cases` cases of the
/// property `body` over values drawn from `strategy`. Panics (failing the
/// host `#[test]`) on the first case whose body returns an error.
pub fn run_property<S: Strategy>(
    config: &ProptestConfig,
    test_name: &str,
    strategy: &S,
    body: impl Fn(S::Value) -> Result<(), TestCaseError>,
) {
    // Stable per-test seed: tests fail reproducibly or not at all.
    let mut seed = 0x5eed_cafe_f00du64;
    for b in test_name.bytes() {
        seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
    }
    for case in 0..config.cases {
        let mut rng = TestRng::new(seed ^ (u64::from(case) << 32));
        let value = strategy.generate(&mut rng);
        if let Err(err) = body(value) {
            panic!(
                "property `{test_name}` failed at case {case}/{}: {err}",
                config.cases
            );
        }
    }
}

/// Define property tests. Mirrors real proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn prop(xs in proptest::collection::vec(0u64..10, 0..50), k in 1usize..4) {
///         prop_assert!(xs.len() < 50);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                $crate::run_property(&config, stringify!($name), &strategy, |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure aborts only the current case
/// with a useful message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn vec_strategy_respects_bounds() {
        let strat = crate::collection::vec(0u64..10, 3..6);
        let mut rng = crate::TestRng::new(9);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn flat_map_threads_dependent_sizes() {
        let strat = (1usize..=4).prop_flat_map(|d| crate::collection::vec(0i64..4, d));
        let mut rng = crate::TestRng::new(11);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((1..=4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_args(xs in crate::collection::vec(0u64..100, 0..20), k in 1usize..5) {
            prop_assert!(xs.len() < 20);
            prop_assert!(k >= 1);
            prop_assert_eq!(k, k, "k should equal itself (k = {})", k);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        crate::run_property(
            &ProptestConfig::with_cases(8),
            "always_fails",
            &(0u64..4),
            |_| Err(TestCaseError::fail("nope")),
        );
    }
}
