//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access, so the
//! real `rand` crate cannot be fetched. This shim implements exactly the
//! 0.8-era API subset the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::gen`, and `Rng::gen_range` over integer ranges — on top of
//! SplitMix64. The generator is deterministic for a given seed (which the
//! datagen crates rely on), statistically solid for simulation workloads,
//! and in no way cryptographic.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (`StdRng::seed_from_u64(seed)`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of a type with a canonical uniform distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// Sample uniformly from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`] from 64 uniform bits.
pub trait Standard {
    /// Map 64 uniform bits to a uniform value of `Self`.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_bits(bits: u64) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    #[inline]
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub mod rngs {
    //! Concrete generators (only `StdRng` is provided).

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_cover_their_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
        assert!(seen.iter().all(|&s| s));
    }
}
