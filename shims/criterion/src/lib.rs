//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim keeps the workspace's `harness = false`
//! benches compiling and runnable: each benchmark executes a short warmup
//! plus a handful of timed iterations and prints min/mean wall-clock time.
//! It performs no statistical analysis, outlier detection, or HTML
//! reporting.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Timed iterations per benchmark (after one warmup run).
const SAMPLES: usize = 3;

/// Entry point handed to benchmark functions by `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark("", &id.into(), &mut f);
        self
    }
}

/// A named set of benchmarks sharing (ignored) sampling settings.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; sampling is fixed in the shim.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; sampling is fixed in the shim.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; sampling is fixed in the shim.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.name, &id.into(), &mut f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&self.name, &id.into(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (report flushing is immediate in the shim).
    pub fn finish(self) {}
}

fn run_benchmark(group: &str, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        warmup: true,
    };
    f(&mut b); // warmup
    b.warmup = false;
    f(&mut b);
    let label = if group.is_empty() {
        id.id.clone()
    } else {
        format!("{group}/{}", id.id)
    };
    if b.samples.is_empty() {
        println!("bench {label}: no samples (Bencher::iter never called)");
        return;
    }
    let min = b.samples.iter().min().unwrap();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "bench {label}: min {:.3} ms, mean {:.3} ms over {} samples",
        min.as_secs_f64() * 1e3,
        mean.as_secs_f64() * 1e3,
        b.samples.len()
    );
}

/// Collects timings for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    warmup: bool,
}

impl Bencher {
    /// Time the closure over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.warmup {
            black_box(f());
            return;
        }
        for _ in 0..SAMPLES {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Benchmark identifier (`"name"`, `BenchmarkId::new("name", param)`, or
/// `BenchmarkId::from_parameter(param)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name qualified by a parameter value.
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Identified by the parameter value alone.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Units-processed-per-iteration hint; accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Collect benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(1));
        group.bench_function("inc", |b| b.iter(|| calls += 1));
        group.finish();
        // one warmup iteration + SAMPLES timed iterations
        assert_eq!(calls as usize, SAMPLES + 1);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut seen = 0u64;
        c.benchmark_group("g")
            .bench_with_input(BenchmarkId::new("f", 42), &21u64, |b, &x| {
                b.iter(|| seen = x * 2)
            });
        assert_eq!(seen, 42);
    }
}
