//! Umbrella crate for the SP-Cube reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See the individual crates for the real APIs:
//! `spcube_core` holds the paper's contribution (SP-Sketch + SP-Cube);
//! `spcube_mapreduce` is the execution substrate; `spcube_baselines` has
//! the Pig/Hive/naive/top-down comparators; `spcube_cubestore` is the
//! persistent columnar cube store and its concurrent query server.

pub use spcube_agg as agg;
pub use spcube_baselines as baselines;
pub use spcube_common as common;
pub use spcube_core as core;
pub use spcube_cubealg as cubealg;
pub use spcube_cubestore as cubestore;
pub use spcube_datagen as datagen;
pub use spcube_lattice as lattice;
pub use spcube_mapreduce as mapreduce;
pub use spcube_obs as obs;
