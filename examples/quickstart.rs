//! Quickstart: compute a data cube with SP-Cube on a small relation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's running example (products sold per city per year),
//! runs the two-round SP-Cube algorithm on a simulated 4-machine cluster,
//! and prints a few cuboids plus the run's traffic metrics.

use sp_cube_repro::agg::AggSpec;
use sp_cube_repro::common::{Group, Mask, Relation, Schema, Value};
use sp_cube_repro::core::sp_cube;
use sp_cube_repro::mapreduce::ClusterConfig;

fn main() {
    // The relation of Example 2.1: (name, city, year) -> sales.
    let mut rel = Relation::empty(Schema::new(["name", "city", "year"], "sales").unwrap());
    let rows: &[(&str, &str, i64, f64)] = &[
        ("laptop", "Rome", 2012, 2000.0),
        ("laptop", "Paris", 2012, 1500.0),
        ("laptop", "Rome", 2013, 900.0),
        ("printer", "Rome", 2011, 300.0),
        ("printer", "Paris", 2011, 120.0),
        ("keyboard", "Rome", 2012, 80.0),
        ("keyboard", "Paris", 2009, 250.0),
        ("mouse", "London", 2012, 420.0),
    ];
    for &(name, city, year, sales) in rows {
        rel.push_row(vec![name.into(), city.into(), Value::Int(year)], sales);
    }

    // A toy cluster: 4 machines, 3 tuples of memory each, so even this tiny
    // relation has "skewed" groups (the apex, with 8 > 3 tuples).
    let cluster = ClusterConfig::new(4, 3);

    let run = sp_cube(&rel, &cluster, AggSpec::Sum).expect("SP-Cube run failed");

    println!(
        "SP-Cube computed {} c-groups in {} MapReduce rounds\n",
        run.cube.len(),
        run.metrics.round_count()
    );

    // Print the cuboid (name, *, year) — the paper's C1.
    println!("cuboid (name, *, year), sum(sales):");
    let mut entries: Vec<(&Group, f64)> = run
        .cube
        .iter()
        .filter(|(g, _)| g.mask == Mask(0b101))
        .map(|(g, v)| (g, v.number()))
        .collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    for (g, v) in entries {
        println!("  {} = {v}", g.display(3));
    }

    // The grand total (*,*,*) — a skewed group, merged by reducer 0 from
    // the mappers' partial aggregates.
    let apex = run.cube.get(&Group::apex()).unwrap();
    println!("\n(*,*,*) total sales = {apex}");

    println!("\nrun metrics:");
    println!("  sketch size           : {} bytes", run.sketch_bytes);
    println!("  skewed c-groups found : {}", run.sketch.skew_count());
    for round in &run.metrics.rounds {
        println!(
            "  round `{}`: {} intermediate records, {} bytes shuffled",
            round.name, round.map_output_records, round.map_output_bytes
        );
    }
}
