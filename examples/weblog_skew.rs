//! Skew resilience on a Zipf-distributed web log: SP-Cube vs Pig vs Hive
//! vs the naive algorithm, side by side.
//!
//! ```text
//! cargo run --release --example weblog_skew
//! ```
//!
//! Generates the paper's gen-zipf workload (two Zipf(1000, 1.1) attributes,
//! two uniform), runs all four algorithms on the same simulated cluster,
//! verifies they agree on the cube, and prints the comparison the paper's
//! Figure 7 makes: total time, intermediate data, and load balance.

use sp_cube_repro::agg::AggSpec;
use sp_cube_repro::baselines::{hive_cube, mr_cube, naive_mr_cube, HiveConfig, MrCubeConfig};
use sp_cube_repro::core::sp_cube;
use sp_cube_repro::datagen::gen_zipf;
use sp_cube_repro::mapreduce::{ClusterConfig, CostModel, RunMetrics};

fn describe(name: &str, metrics: &RunMetrics, groups: usize) {
    println!(
        "{name:<8} time {:>8.1}s   rounds {}   map-output {:>8.2} MB   spill {:>7.2} MB   groups {groups}",
        metrics.total_seconds(),
        metrics.round_count(),
        metrics.map_output_bytes() as f64 / (1024.0 * 1024.0),
        metrics.spilled_bytes() as f64 / (1024.0 * 1024.0),
    );
}

fn main() {
    let n = 100_000;
    let rel = gen_zipf(n, 4, 7);
    let cluster = ClusterConfig::new(20, n / 20).with_cost(CostModel::paper_scale(1000.0));
    let agg = AggSpec::Count;

    println!("gen-zipf: n = {n}, d = 4, k = 20, m = n/k\n");

    let sp = sp_cube(&rel, &cluster, agg).expect("SP-Cube failed");
    describe("SP-Cube", &sp.metrics, sp.cube.len());

    let pig = mr_cube(&rel, &cluster, &MrCubeConfig::new(agg)).expect("MRCube failed");
    describe("Pig", &pig.metrics, pig.cube.len());

    match hive_cube(&rel, &cluster, &HiveConfig::new(agg)) {
        Ok(hive) => {
            describe("Hive", &hive.metrics, hive.cube.len());
            assert!(
                hive.cube.approx_eq(&sp.cube, 1e-9),
                "Hive disagrees with SP-Cube"
            );
        }
        Err(e) => println!("Hive     STUCK: {e}"),
    }

    let naive = naive_mr_cube(&rel, &cluster, agg).expect("naive failed");
    describe("Naive", &naive.metrics, naive.cube.len());

    // Cross-check: all algorithms computed the same cube.
    assert!(
        pig.cube.approx_eq(&sp.cube, 1e-9),
        "Pig disagrees with SP-Cube"
    );
    assert!(
        naive.cube.approx_eq(&sp.cube, 1e-9),
        "Naive disagrees with SP-Cube"
    );
    println!("\nall algorithms agree on all {} c-groups ✓", sp.cube.len());

    // Load balance (Section 6.2's closing point): max/mean of per-reducer
    // shuffle input — the work each machine receives. SP-Cube's range
    // reducers (1..=k; reducer 0 only merges skew partials) should be
    // near-uniform despite the zipf skew.
    let imbalance = |bytes: &[u64]| {
        let max = *bytes.iter().max().unwrap() as f64;
        max / (bytes.iter().sum::<u64>() as f64 / bytes.len() as f64)
    };
    let sp_round = sp.metrics.rounds.last().unwrap();
    let pig_cube_round = &pig.metrics.rounds[1];
    println!("\nreducer input imbalance (1.0 = perfectly balanced):");
    println!(
        "  SP-Cube (range partitioning) : {:.2}",
        imbalance(&sp_round.reducer_input_bytes[1..])
    );
    println!(
        "  Pig      (hash partitioning) : {:.2}",
        imbalance(&pig_cube_round.reducer_input_bytes)
    );
}
