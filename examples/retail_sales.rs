//! Retail-sales analysis: the paper's motivating scenario at scale.
//!
//! ```text
//! cargo run --release --example retail_sales
//! ```
//!
//! An analyst's relation of product sales across cities and years, with a
//! heavy concentration on laptops in 2012 (the paper's own example of a
//! skewed group: "if an extremely large number of laptops were sold in
//! 2012, they may not all fit in a single machine's main memory"). The
//! example shows how the SP-Sketch spots those groups, how SP-Cube
//! aggregates them map-side, and how the resulting cube answers typical
//! roll-up questions.

use sp_cube_repro::agg::AggSpec;
use sp_cube_repro::common::{Group, Mask, Value};
use sp_cube_repro::core::{SpCube, SpCubeConfig};
use sp_cube_repro::datagen::retail;
use sp_cube_repro::mapreduce::ClusterConfig;

fn main() {
    let n = 200_000;
    let rel = retail(n, 0.35, 2024);
    // 10 machines; memory = n/50 tuples makes groups above 2% of the
    // relation skewed.
    let cluster = ClusterConfig::new(10, n / 50);

    let run =
        SpCube::run(&rel, &cluster, &SpCubeConfig::new(AggSpec::Sum)).expect("SP-Cube run failed");

    println!(
        "relation: {n} sales records; cube: {} c-groups",
        run.cube.len()
    );
    println!(
        "sketch: {} bytes, {} skewed c-groups recorded\n",
        run.sketch_bytes,
        run.sketch.skew_count()
    );

    // Which (name, *, year) groups were skewed? Should feature laptop/2012.
    println!("skewed groups in cuboid (name, *, year):");
    for key in run.sketch.node(Mask(0b101)).skews() {
        let g = Group::new(Mask(0b101), key.to_vec());
        println!("  {}", g.display(3));
    }

    // Roll-up: total sales per year.
    println!("\nsum(sales) per year:");
    let mut years: Vec<(&Group, f64)> = run
        .cube
        .iter()
        .filter(|(g, _)| g.mask == Mask(0b100))
        .map(|(g, v)| (g, v.number()))
        .collect();
    years.sort_by(|a, b| a.0.cmp(b.0));
    for (g, v) in years {
        println!("  {} = {v:.0}", g.display(3));
    }

    // Drill-down: laptop sales per city in 2012.
    println!("\nlaptop sales per city in 2012:");
    let mut cities: Vec<(&Group, f64)> = run
        .cube
        .iter()
        .filter(|(g, _)| {
            g.mask == Mask(0b111)
                && g.key[0] == Value::str("laptop")
                && g.key[2] == Value::Int(2012)
        })
        .map(|(g, v)| (g, v.number()))
        .collect();
    cities.sort_by(|a, b| a.0.cmp(b.0));
    for (g, v) in cities.iter().take(8) {
        println!("  {} = {v:.0}", g.display(3));
    }

    // Traffic summary: SP-Cube ships far fewer records than naive 2^d per
    // tuple.
    let records = run.metrics.map_output_records();
    println!(
        "\nintermediate records: {records} ({:.2} per tuple; naive would be {} per tuple)",
        records as f64 / n as f64,
        1 << 3
    );
}
