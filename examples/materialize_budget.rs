//! Partial materialization under a space budget: compute the cube with
//! SP-Cube, then use HRU greedy view selection to decide which cuboids to
//! keep when storage is limited, and show the answering-cost trade-off.
//!
//! ```text
//! cargo run --release --example materialize_budget [max_views]
//! ```

use sp_cube_repro::agg::AggSpec;
use sp_cube_repro::common::Mask;
use sp_cube_repro::core::sp_cube;
use sp_cube_repro::cubealg::{best_ancestor, cuboid_sizes, greedy_select};
use sp_cube_repro::datagen::usagov_like;
use sp_cube_repro::mapreduce::ClusterConfig;

fn main() {
    let max_views: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let n = 60_000;
    let d = 4;
    let rel = usagov_like(n, 0x77);
    let cluster = ClusterConfig::new(10, n / 10);

    let run = sp_cube(&rel, &cluster, AggSpec::Count).expect("SP-Cube failed");
    let sizes = cuboid_sizes(&run.cube, d);
    let full_rows = sizes[&Mask::full(d)];
    let cube_rows: u64 = sizes.values().sum();
    println!(
        "cube: {cube_rows} rows over {} cuboids (full cuboid: {full_rows} rows)\n",
        1 << d
    );

    println!(
        "{:<6} {:>12} {:>16} {:>10}",
        "views", "stored_rows", "answer_cost", "vs_full"
    );
    let baseline = greedy_select(d, &sizes, 0).total_answer_cost;
    for k in [0usize, 1, 2, 4, 8, 15] {
        if k > max_views.max(15) {
            break;
        }
        let sel = greedy_select(d, &sizes, k);
        println!(
            "{:<6} {:>12} {:>16} {:>9.1}x",
            sel.chosen.len(),
            sel.total_rows,
            sel.total_answer_cost,
            baseline as f64 / sel.total_answer_cost as f64
        );
    }

    let sel = greedy_select(d, &sizes, max_views);
    println!("\ngreedy pick order with budget {max_views}:");
    for (i, v) in sel.chosen.iter().enumerate() {
        println!(
            "  {i}: cuboid {:0>width$b} ({} rows)",
            v.0,
            sizes[v],
            width = d
        );
    }

    println!("\nanswering plan for every cuboid:");
    for q in Mask::full(d).subsets() {
        let a = best_ancestor(q, &sel, &sizes).expect("full view always answers");
        println!(
            "  {:0>width$b} <- {:0>width$b} (scan {} rows)",
            q.0,
            a.0,
            sizes[&a],
            width = d
        );
    }
}
