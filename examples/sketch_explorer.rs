//! SP-Sketch explorer: build exact and sampled sketches over gen-binomial
//! data and inspect what they record.
//!
//! ```text
//! cargo run --release --example sketch_explorer [skewness-percent]
//! ```
//!
//! Shows the two halves of the sketch (skews + partition elements), the
//! sampled sketch's accuracy against the exact one, and the size behaviour
//! of Figure 6c (sketch stays in the tens-of-KB range while the input is
//! many MB).

use sp_cube_repro::common::Mask;
use sp_cube_repro::core::{build_exact_sketch, build_sampled_sketch, SketchConfig};
use sp_cube_repro::datagen::gen_binomial;
use sp_cube_repro::mapreduce::ClusterConfig;

fn main() {
    let p_pct: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(25);
    let n = 200_000;
    let d = 4;
    let rel = gen_binomial(n, d, p_pct as f64 / 100.0, 0xeea);
    let cluster = ClusterConfig::new(20, n / 500);

    println!(
        "gen-binomial: n = {n}, d = {d}, p = {p_pct}%  (input {:.1} MB, skew threshold m = {})\n",
        rel.wire_bytes() as f64 / (1024.0 * 1024.0),
        cluster.skew_threshold()
    );

    let exact = build_exact_sketch(&rel, &cluster);
    let (sampled, metrics) =
        build_sampled_sketch(&rel, &cluster, &SketchConfig::default()).expect("sketch round");

    println!(
        "exact sketch  : {} skewed groups, {} bytes",
        exact.skew_count(),
        exact.serialized_bytes()
    );
    println!(
        "sampled sketch: {} skewed groups, {} bytes (sample: {} tuples, round {:.1}s simulated)\n",
        sampled.skew_count(),
        sampled.serialized_bytes(),
        metrics.map_output_records,
        metrics.simulated_seconds
    );

    // Accuracy: how many of the true skews did the sample catch
    // (Proposition 4.5 says: all of them, with high probability)?
    let mut caught = 0usize;
    let mut missed = 0usize;
    for mask in Mask::full(d).subsets() {
        for key in exact.node(mask).skews() {
            if sampled.is_skewed(mask, key) {
                caught += 1;
            } else {
                missed += 1;
            }
        }
    }
    println!("skew detection: {caught} caught, {missed} missed");

    // Per-cuboid view of the busiest cuboids.
    println!("\nper-cuboid skew counts (exact / sampled), partition elements:");
    for mask in Mask::full(d).subsets() {
        let e = exact.node(mask);
        let s = sampled.node(mask);
        if e.skew_count() > 0 || s.skew_count() > 0 {
            println!(
                "  mask {:>4b}: {:>3} / {:<3} skews, {} partition elements",
                mask.0,
                e.skew_count(),
                s.skew_count(),
                s.partition_elements().len()
            );
        }
    }

    // Ratio the paper highlights: sketch orders of magnitude below input.
    let ratio = rel.wire_bytes() as f64 / sampled.serialized_bytes() as f64;
    println!("\ninput / sketch size ratio: {ratio:.0}x");
}
