/root/repo/target/release/deps/correctness-460be747e0930a08.d: tests/correctness.rs

/root/repo/target/release/deps/correctness-460be747e0930a08: tests/correctness.rs

tests/correctness.rs:
