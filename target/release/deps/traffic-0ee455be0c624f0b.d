/root/repo/target/release/deps/traffic-0ee455be0c624f0b.d: tests/traffic.rs

/root/repo/target/release/deps/traffic-0ee455be0c624f0b: tests/traffic.rs

tests/traffic.rs:
