/root/repo/target/release/deps/spcube-929474c7646aad5f.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/release/deps/spcube-929474c7646aad5f: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
