/root/repo/target/release/deps/spcube_baselines-b605601754d412ee.d: crates/baselines/src/lib.rs crates/baselines/src/hive.rs crates/baselines/src/mrcube/mod.rs crates/baselines/src/mrcube/jobs.rs crates/baselines/src/mrcube/plan.rs crates/baselines/src/naive.rs crates/baselines/src/topdown.rs

/root/repo/target/release/deps/libspcube_baselines-b605601754d412ee.rlib: crates/baselines/src/lib.rs crates/baselines/src/hive.rs crates/baselines/src/mrcube/mod.rs crates/baselines/src/mrcube/jobs.rs crates/baselines/src/mrcube/plan.rs crates/baselines/src/naive.rs crates/baselines/src/topdown.rs

/root/repo/target/release/deps/libspcube_baselines-b605601754d412ee.rmeta: crates/baselines/src/lib.rs crates/baselines/src/hive.rs crates/baselines/src/mrcube/mod.rs crates/baselines/src/mrcube/jobs.rs crates/baselines/src/mrcube/plan.rs crates/baselines/src/naive.rs crates/baselines/src/topdown.rs

crates/baselines/src/lib.rs:
crates/baselines/src/hive.rs:
crates/baselines/src/mrcube/mod.rs:
crates/baselines/src/mrcube/jobs.rs:
crates/baselines/src/mrcube/plan.rs:
crates/baselines/src/naive.rs:
crates/baselines/src/topdown.rs:
