/root/repo/target/release/deps/spcube_cubealg-e93ddaf62b280a68.d: crates/cubealg/src/lib.rs crates/cubealg/src/buc.rs crates/cubealg/src/cube.rs crates/cubealg/src/naive.rs crates/cubealg/src/pipesort.rs crates/cubealg/src/query.rs crates/cubealg/src/views.rs

/root/repo/target/release/deps/libspcube_cubealg-e93ddaf62b280a68.rlib: crates/cubealg/src/lib.rs crates/cubealg/src/buc.rs crates/cubealg/src/cube.rs crates/cubealg/src/naive.rs crates/cubealg/src/pipesort.rs crates/cubealg/src/query.rs crates/cubealg/src/views.rs

/root/repo/target/release/deps/libspcube_cubealg-e93ddaf62b280a68.rmeta: crates/cubealg/src/lib.rs crates/cubealg/src/buc.rs crates/cubealg/src/cube.rs crates/cubealg/src/naive.rs crates/cubealg/src/pipesort.rs crates/cubealg/src/query.rs crates/cubealg/src/views.rs

crates/cubealg/src/lib.rs:
crates/cubealg/src/buc.rs:
crates/cubealg/src/cube.rs:
crates/cubealg/src/naive.rs:
crates/cubealg/src/pipesort.rs:
crates/cubealg/src/query.rs:
crates/cubealg/src/views.rs:
