/root/repo/target/release/deps/proptest_cube-eac8ae5b495f8fdc.d: tests/proptest_cube.rs

/root/repo/target/release/deps/proptest_cube-eac8ae5b495f8fdc: tests/proptest_cube.rs

tests/proptest_cube.rs:
