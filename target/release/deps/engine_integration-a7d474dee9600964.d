/root/repo/target/release/deps/engine_integration-a7d474dee9600964.d: tests/engine_integration.rs

/root/repo/target/release/deps/engine_integration-a7d474dee9600964: tests/engine_integration.rs

tests/engine_integration.rs:
