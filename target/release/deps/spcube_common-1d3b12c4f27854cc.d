/root/repo/target/release/deps/spcube_common-1d3b12c4f27854cc.d: crates/common/src/lib.rs crates/common/src/error.rs crates/common/src/group.rs crates/common/src/io.rs crates/common/src/mask.rs crates/common/src/order.rs crates/common/src/relation.rs crates/common/src/schema.rs crates/common/src/tuple.rs crates/common/src/value.rs

/root/repo/target/release/deps/libspcube_common-1d3b12c4f27854cc.rlib: crates/common/src/lib.rs crates/common/src/error.rs crates/common/src/group.rs crates/common/src/io.rs crates/common/src/mask.rs crates/common/src/order.rs crates/common/src/relation.rs crates/common/src/schema.rs crates/common/src/tuple.rs crates/common/src/value.rs

/root/repo/target/release/deps/libspcube_common-1d3b12c4f27854cc.rmeta: crates/common/src/lib.rs crates/common/src/error.rs crates/common/src/group.rs crates/common/src/io.rs crates/common/src/mask.rs crates/common/src/order.rs crates/common/src/relation.rs crates/common/src/schema.rs crates/common/src/tuple.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/error.rs:
crates/common/src/group.rs:
crates/common/src/io.rs:
crates/common/src/mask.rs:
crates/common/src/order.rs:
crates/common/src/relation.rs:
crates/common/src/schema.rs:
crates/common/src/tuple.rs:
crates/common/src/value.rs:
