/root/repo/target/release/deps/figures-ab77059752429c6a.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-ab77059752429c6a: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
