/root/repo/target/release/deps/fault_chaos-108fff499f67334b.d: tests/fault_chaos.rs

/root/repo/target/release/deps/fault_chaos-108fff499f67334b: tests/fault_chaos.rs

tests/fault_chaos.rs:
