/root/repo/target/release/deps/spcube_lattice-7f1d0e5b0c0ab61e.d: crates/lattice/src/lib.rs crates/lattice/src/anchor.rs crates/lattice/src/bfs.rs crates/lattice/src/cube_lattice.rs crates/lattice/src/tuple_lattice.rs

/root/repo/target/release/deps/libspcube_lattice-7f1d0e5b0c0ab61e.rlib: crates/lattice/src/lib.rs crates/lattice/src/anchor.rs crates/lattice/src/bfs.rs crates/lattice/src/cube_lattice.rs crates/lattice/src/tuple_lattice.rs

/root/repo/target/release/deps/libspcube_lattice-7f1d0e5b0c0ab61e.rmeta: crates/lattice/src/lib.rs crates/lattice/src/anchor.rs crates/lattice/src/bfs.rs crates/lattice/src/cube_lattice.rs crates/lattice/src/tuple_lattice.rs

crates/lattice/src/lib.rs:
crates/lattice/src/anchor.rs:
crates/lattice/src/bfs.rs:
crates/lattice/src/cube_lattice.rs:
crates/lattice/src/tuple_lattice.rs:
