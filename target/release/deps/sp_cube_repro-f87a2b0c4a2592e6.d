/root/repo/target/release/deps/sp_cube_repro-f87a2b0c4a2592e6.d: src/lib.rs

/root/repo/target/release/deps/sp_cube_repro-f87a2b0c4a2592e6: src/lib.rs

src/lib.rs:
