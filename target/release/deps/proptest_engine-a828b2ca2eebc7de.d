/root/repo/target/release/deps/proptest_engine-a828b2ca2eebc7de.d: tests/proptest_engine.rs

/root/repo/target/release/deps/proptest_engine-a828b2ca2eebc7de: tests/proptest_engine.rs

tests/proptest_engine.rs:
