/root/repo/target/release/deps/sketch_props-134e85635c1145ee.d: tests/sketch_props.rs

/root/repo/target/release/deps/sketch_props-134e85635c1145ee: tests/sketch_props.rs

tests/sketch_props.rs:
