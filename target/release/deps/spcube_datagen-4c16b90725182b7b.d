/root/repo/target/release/deps/spcube_datagen-4c16b90725182b7b.d: crates/datagen/src/lib.rs crates/datagen/src/adversarial.rs crates/datagen/src/binomial.rs crates/datagen/src/real_like.rs crates/datagen/src/retail.rs crates/datagen/src/zipf.rs

/root/repo/target/release/deps/libspcube_datagen-4c16b90725182b7b.rlib: crates/datagen/src/lib.rs crates/datagen/src/adversarial.rs crates/datagen/src/binomial.rs crates/datagen/src/real_like.rs crates/datagen/src/retail.rs crates/datagen/src/zipf.rs

/root/repo/target/release/deps/libspcube_datagen-4c16b90725182b7b.rmeta: crates/datagen/src/lib.rs crates/datagen/src/adversarial.rs crates/datagen/src/binomial.rs crates/datagen/src/real_like.rs crates/datagen/src/retail.rs crates/datagen/src/zipf.rs

crates/datagen/src/lib.rs:
crates/datagen/src/adversarial.rs:
crates/datagen/src/binomial.rs:
crates/datagen/src/real_like.rs:
crates/datagen/src/retail.rs:
crates/datagen/src/zipf.rs:
