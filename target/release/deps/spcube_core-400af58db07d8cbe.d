/root/repo/target/release/deps/spcube_core-400af58db07d8cbe.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/sketch/mod.rs crates/core/src/sketch/build.rs crates/core/src/sketch/node.rs crates/core/src/spcube/mod.rs crates/core/src/spcube/job.rs

/root/repo/target/release/deps/libspcube_core-400af58db07d8cbe.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/sketch/mod.rs crates/core/src/sketch/build.rs crates/core/src/sketch/node.rs crates/core/src/spcube/mod.rs crates/core/src/spcube/job.rs

/root/repo/target/release/deps/libspcube_core-400af58db07d8cbe.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/sketch/mod.rs crates/core/src/sketch/build.rs crates/core/src/sketch/node.rs crates/core/src/spcube/mod.rs crates/core/src/spcube/job.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/sketch/mod.rs:
crates/core/src/sketch/build.rs:
crates/core/src/sketch/node.rs:
crates/core/src/spcube/mod.rs:
crates/core/src/spcube/job.rs:
