/root/repo/target/release/deps/inspect-833f1b5645f59144.d: crates/bench/src/bin/inspect.rs

/root/repo/target/release/deps/inspect-833f1b5645f59144: crates/bench/src/bin/inspect.rs

crates/bench/src/bin/inspect.rs:
