/root/repo/target/release/deps/extensions-ab3c59df3fa9c2ca.d: tests/extensions.rs

/root/repo/target/release/deps/extensions-ab3c59df3fa9c2ca: tests/extensions.rs

tests/extensions.rs:
