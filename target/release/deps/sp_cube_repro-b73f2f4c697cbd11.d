/root/repo/target/release/deps/sp_cube_repro-b73f2f4c697cbd11.d: src/lib.rs

/root/repo/target/release/deps/libsp_cube_repro-b73f2f4c697cbd11.rlib: src/lib.rs

/root/repo/target/release/deps/libsp_cube_repro-b73f2f4c697cbd11.rmeta: src/lib.rs

src/lib.rs:
