/root/repo/target/release/deps/spcube_agg-4926de2c0a026c23.d: crates/agg/src/lib.rs crates/agg/src/output.rs crates/agg/src/spec.rs crates/agg/src/state.rs

/root/repo/target/release/deps/libspcube_agg-4926de2c0a026c23.rlib: crates/agg/src/lib.rs crates/agg/src/output.rs crates/agg/src/spec.rs crates/agg/src/state.rs

/root/repo/target/release/deps/libspcube_agg-4926de2c0a026c23.rmeta: crates/agg/src/lib.rs crates/agg/src/output.rs crates/agg/src/spec.rs crates/agg/src/state.rs

crates/agg/src/lib.rs:
crates/agg/src/output.rs:
crates/agg/src/spec.rs:
crates/agg/src/state.rs:
