/root/repo/target/release/deps/spcube_bench-a95d1ea82042381c.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libspcube_bench-a95d1ea82042381c.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libspcube_bench-a95d1ea82042381c.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
