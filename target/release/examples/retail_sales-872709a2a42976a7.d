/root/repo/target/release/examples/retail_sales-872709a2a42976a7.d: examples/retail_sales.rs

/root/repo/target/release/examples/retail_sales-872709a2a42976a7: examples/retail_sales.rs

examples/retail_sales.rs:
