/root/repo/target/release/examples/weblog_skew-cb6a2f9978ccedaa.d: examples/weblog_skew.rs

/root/repo/target/release/examples/weblog_skew-cb6a2f9978ccedaa: examples/weblog_skew.rs

examples/weblog_skew.rs:
