/root/repo/target/release/examples/quickstart-0d5e4b35f70667a8.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0d5e4b35f70667a8: examples/quickstart.rs

examples/quickstart.rs:
