/root/repo/target/release/examples/sketch_explorer-c1bdfeeadfbe661d.d: examples/sketch_explorer.rs

/root/repo/target/release/examples/sketch_explorer-c1bdfeeadfbe661d: examples/sketch_explorer.rs

examples/sketch_explorer.rs:
