/root/repo/target/release/examples/dbg_bal-6282879846975768.d: crates/bench/examples/dbg_bal.rs

/root/repo/target/release/examples/dbg_bal-6282879846975768: crates/bench/examples/dbg_bal.rs

crates/bench/examples/dbg_bal.rs:
