/root/repo/target/release/examples/materialize_budget-c03e804ecc1513eb.d: examples/materialize_budget.rs

/root/repo/target/release/examples/materialize_budget-c03e804ecc1513eb: examples/materialize_budget.rs

examples/materialize_budget.rs:
