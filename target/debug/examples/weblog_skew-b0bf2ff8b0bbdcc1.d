/root/repo/target/debug/examples/weblog_skew-b0bf2ff8b0bbdcc1.d: examples/weblog_skew.rs Cargo.toml

/root/repo/target/debug/examples/libweblog_skew-b0bf2ff8b0bbdcc1.rmeta: examples/weblog_skew.rs Cargo.toml

examples/weblog_skew.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
