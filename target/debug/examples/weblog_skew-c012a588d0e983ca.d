/root/repo/target/debug/examples/weblog_skew-c012a588d0e983ca.d: examples/weblog_skew.rs

/root/repo/target/debug/examples/weblog_skew-c012a588d0e983ca: examples/weblog_skew.rs

examples/weblog_skew.rs:
