/root/repo/target/debug/examples/materialize_budget-9d06f99386e4b301.d: examples/materialize_budget.rs

/root/repo/target/debug/examples/materialize_budget-9d06f99386e4b301: examples/materialize_budget.rs

examples/materialize_budget.rs:
