/root/repo/target/debug/examples/quickstart-061b9743367f31ea.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-061b9743367f31ea: examples/quickstart.rs

examples/quickstart.rs:
