/root/repo/target/debug/examples/sketch_explorer-e620efa1ceeb24dd.d: examples/sketch_explorer.rs

/root/repo/target/debug/examples/sketch_explorer-e620efa1ceeb24dd: examples/sketch_explorer.rs

examples/sketch_explorer.rs:
