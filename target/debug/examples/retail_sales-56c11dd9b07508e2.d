/root/repo/target/debug/examples/retail_sales-56c11dd9b07508e2.d: examples/retail_sales.rs

/root/repo/target/debug/examples/retail_sales-56c11dd9b07508e2: examples/retail_sales.rs

examples/retail_sales.rs:
