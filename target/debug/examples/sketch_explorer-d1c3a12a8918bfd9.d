/root/repo/target/debug/examples/sketch_explorer-d1c3a12a8918bfd9.d: examples/sketch_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libsketch_explorer-d1c3a12a8918bfd9.rmeta: examples/sketch_explorer.rs Cargo.toml

examples/sketch_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
