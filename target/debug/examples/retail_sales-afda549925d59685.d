/root/repo/target/debug/examples/retail_sales-afda549925d59685.d: examples/retail_sales.rs Cargo.toml

/root/repo/target/debug/examples/libretail_sales-afda549925d59685.rmeta: examples/retail_sales.rs Cargo.toml

examples/retail_sales.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
