/root/repo/target/debug/examples/materialize_budget-d144f29f75675884.d: examples/materialize_budget.rs Cargo.toml

/root/repo/target/debug/examples/libmaterialize_budget-d144f29f75675884.rmeta: examples/materialize_budget.rs Cargo.toml

examples/materialize_budget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
