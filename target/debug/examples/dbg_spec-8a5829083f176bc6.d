/root/repo/target/debug/examples/dbg_spec-8a5829083f176bc6.d: examples/dbg_spec.rs

/root/repo/target/debug/examples/dbg_spec-8a5829083f176bc6: examples/dbg_spec.rs

examples/dbg_spec.rs:
