/root/repo/target/debug/deps/spcube_baselines-865ee92534bed1ad.d: crates/baselines/src/lib.rs crates/baselines/src/hive.rs crates/baselines/src/mrcube/mod.rs crates/baselines/src/mrcube/jobs.rs crates/baselines/src/mrcube/plan.rs crates/baselines/src/naive.rs crates/baselines/src/topdown.rs

/root/repo/target/debug/deps/libspcube_baselines-865ee92534bed1ad.rlib: crates/baselines/src/lib.rs crates/baselines/src/hive.rs crates/baselines/src/mrcube/mod.rs crates/baselines/src/mrcube/jobs.rs crates/baselines/src/mrcube/plan.rs crates/baselines/src/naive.rs crates/baselines/src/topdown.rs

/root/repo/target/debug/deps/libspcube_baselines-865ee92534bed1ad.rmeta: crates/baselines/src/lib.rs crates/baselines/src/hive.rs crates/baselines/src/mrcube/mod.rs crates/baselines/src/mrcube/jobs.rs crates/baselines/src/mrcube/plan.rs crates/baselines/src/naive.rs crates/baselines/src/topdown.rs

crates/baselines/src/lib.rs:
crates/baselines/src/hive.rs:
crates/baselines/src/mrcube/mod.rs:
crates/baselines/src/mrcube/jobs.rs:
crates/baselines/src/mrcube/plan.rs:
crates/baselines/src/naive.rs:
crates/baselines/src/topdown.rs:
