/root/repo/target/debug/deps/sp_cube_repro-44a75f01ad6688e2.d: src/lib.rs

/root/repo/target/debug/deps/libsp_cube_repro-44a75f01ad6688e2.rlib: src/lib.rs

/root/repo/target/debug/deps/libsp_cube_repro-44a75f01ad6688e2.rmeta: src/lib.rs

src/lib.rs:
