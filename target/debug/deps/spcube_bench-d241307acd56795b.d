/root/repo/target/debug/deps/spcube_bench-d241307acd56795b.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/spcube_bench-d241307acd56795b: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
