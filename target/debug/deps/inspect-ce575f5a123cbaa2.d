/root/repo/target/debug/deps/inspect-ce575f5a123cbaa2.d: crates/bench/src/bin/inspect.rs

/root/repo/target/debug/deps/inspect-ce575f5a123cbaa2: crates/bench/src/bin/inspect.rs

crates/bench/src/bin/inspect.rs:
