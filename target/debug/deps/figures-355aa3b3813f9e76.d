/root/repo/target/debug/deps/figures-355aa3b3813f9e76.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-355aa3b3813f9e76: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
