/root/repo/target/debug/deps/proptest_cube-fd398100a0b27995.d: tests/proptest_cube.rs

/root/repo/target/debug/deps/proptest_cube-fd398100a0b27995: tests/proptest_cube.rs

tests/proptest_cube.rs:
