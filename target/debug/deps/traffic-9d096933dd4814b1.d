/root/repo/target/debug/deps/traffic-9d096933dd4814b1.d: tests/traffic.rs

/root/repo/target/debug/deps/traffic-9d096933dd4814b1: tests/traffic.rs

tests/traffic.rs:
