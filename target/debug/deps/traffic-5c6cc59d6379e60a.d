/root/repo/target/debug/deps/traffic-5c6cc59d6379e60a.d: tests/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libtraffic-5c6cc59d6379e60a.rmeta: tests/traffic.rs Cargo.toml

tests/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
