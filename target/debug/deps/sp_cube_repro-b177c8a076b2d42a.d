/root/repo/target/debug/deps/sp_cube_repro-b177c8a076b2d42a.d: src/lib.rs

/root/repo/target/debug/deps/sp_cube_repro-b177c8a076b2d42a: src/lib.rs

src/lib.rs:
