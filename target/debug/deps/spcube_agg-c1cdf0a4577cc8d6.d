/root/repo/target/debug/deps/spcube_agg-c1cdf0a4577cc8d6.d: crates/agg/src/lib.rs crates/agg/src/output.rs crates/agg/src/spec.rs crates/agg/src/state.rs

/root/repo/target/debug/deps/spcube_agg-c1cdf0a4577cc8d6: crates/agg/src/lib.rs crates/agg/src/output.rs crates/agg/src/spec.rs crates/agg/src/state.rs

crates/agg/src/lib.rs:
crates/agg/src/output.rs:
crates/agg/src/spec.rs:
crates/agg/src/state.rs:
