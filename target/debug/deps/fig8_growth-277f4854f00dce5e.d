/root/repo/target/debug/deps/fig8_growth-277f4854f00dce5e.d: crates/bench/benches/fig8_growth.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_growth-277f4854f00dce5e.rmeta: crates/bench/benches/fig8_growth.rs Cargo.toml

crates/bench/benches/fig8_growth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
