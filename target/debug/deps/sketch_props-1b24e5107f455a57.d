/root/repo/target/debug/deps/sketch_props-1b24e5107f455a57.d: tests/sketch_props.rs Cargo.toml

/root/repo/target/debug/deps/libsketch_props-1b24e5107f455a57.rmeta: tests/sketch_props.rs Cargo.toml

tests/sketch_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
