/root/repo/target/debug/deps/spcube_datagen-e23091380a251ade.d: crates/datagen/src/lib.rs crates/datagen/src/adversarial.rs crates/datagen/src/binomial.rs crates/datagen/src/real_like.rs crates/datagen/src/retail.rs crates/datagen/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libspcube_datagen-e23091380a251ade.rmeta: crates/datagen/src/lib.rs crates/datagen/src/adversarial.rs crates/datagen/src/binomial.rs crates/datagen/src/real_like.rs crates/datagen/src/retail.rs crates/datagen/src/zipf.rs Cargo.toml

crates/datagen/src/lib.rs:
crates/datagen/src/adversarial.rs:
crates/datagen/src/binomial.rs:
crates/datagen/src/real_like.rs:
crates/datagen/src/retail.rs:
crates/datagen/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
