/root/repo/target/debug/deps/correctness-59149a7450ee4fb7.d: tests/correctness.rs Cargo.toml

/root/repo/target/debug/deps/libcorrectness-59149a7450ee4fb7.rmeta: tests/correctness.rs Cargo.toml

tests/correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
