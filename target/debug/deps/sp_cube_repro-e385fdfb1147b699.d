/root/repo/target/debug/deps/sp_cube_repro-e385fdfb1147b699.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsp_cube_repro-e385fdfb1147b699.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
