/root/repo/target/debug/deps/fig5_usagov-ee782310c8fafcf4.d: crates/bench/benches/fig5_usagov.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_usagov-ee782310c8fafcf4.rmeta: crates/bench/benches/fig5_usagov.rs Cargo.toml

crates/bench/benches/fig5_usagov.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
