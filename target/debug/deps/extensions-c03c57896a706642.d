/root/repo/target/debug/deps/extensions-c03c57896a706642.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-c03c57896a706642: tests/extensions.rs

tests/extensions.rs:
