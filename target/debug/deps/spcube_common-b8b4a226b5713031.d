/root/repo/target/debug/deps/spcube_common-b8b4a226b5713031.d: crates/common/src/lib.rs crates/common/src/error.rs crates/common/src/group.rs crates/common/src/io.rs crates/common/src/mask.rs crates/common/src/order.rs crates/common/src/relation.rs crates/common/src/schema.rs crates/common/src/tuple.rs crates/common/src/value.rs

/root/repo/target/debug/deps/libspcube_common-b8b4a226b5713031.rlib: crates/common/src/lib.rs crates/common/src/error.rs crates/common/src/group.rs crates/common/src/io.rs crates/common/src/mask.rs crates/common/src/order.rs crates/common/src/relation.rs crates/common/src/schema.rs crates/common/src/tuple.rs crates/common/src/value.rs

/root/repo/target/debug/deps/libspcube_common-b8b4a226b5713031.rmeta: crates/common/src/lib.rs crates/common/src/error.rs crates/common/src/group.rs crates/common/src/io.rs crates/common/src/mask.rs crates/common/src/order.rs crates/common/src/relation.rs crates/common/src/schema.rs crates/common/src/tuple.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/error.rs:
crates/common/src/group.rs:
crates/common/src/io.rs:
crates/common/src/mask.rs:
crates/common/src/order.rs:
crates/common/src/relation.rs:
crates/common/src/schema.rs:
crates/common/src/tuple.rs:
crates/common/src/value.rs:
