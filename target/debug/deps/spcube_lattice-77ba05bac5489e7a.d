/root/repo/target/debug/deps/spcube_lattice-77ba05bac5489e7a.d: crates/lattice/src/lib.rs crates/lattice/src/anchor.rs crates/lattice/src/bfs.rs crates/lattice/src/cube_lattice.rs crates/lattice/src/tuple_lattice.rs Cargo.toml

/root/repo/target/debug/deps/libspcube_lattice-77ba05bac5489e7a.rmeta: crates/lattice/src/lib.rs crates/lattice/src/anchor.rs crates/lattice/src/bfs.rs crates/lattice/src/cube_lattice.rs crates/lattice/src/tuple_lattice.rs Cargo.toml

crates/lattice/src/lib.rs:
crates/lattice/src/anchor.rs:
crates/lattice/src/bfs.rs:
crates/lattice/src/cube_lattice.rs:
crates/lattice/src/tuple_lattice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
