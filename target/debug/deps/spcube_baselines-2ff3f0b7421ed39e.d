/root/repo/target/debug/deps/spcube_baselines-2ff3f0b7421ed39e.d: crates/baselines/src/lib.rs crates/baselines/src/hive.rs crates/baselines/src/mrcube/mod.rs crates/baselines/src/mrcube/jobs.rs crates/baselines/src/mrcube/plan.rs crates/baselines/src/naive.rs crates/baselines/src/topdown.rs

/root/repo/target/debug/deps/spcube_baselines-2ff3f0b7421ed39e: crates/baselines/src/lib.rs crates/baselines/src/hive.rs crates/baselines/src/mrcube/mod.rs crates/baselines/src/mrcube/jobs.rs crates/baselines/src/mrcube/plan.rs crates/baselines/src/naive.rs crates/baselines/src/topdown.rs

crates/baselines/src/lib.rs:
crates/baselines/src/hive.rs:
crates/baselines/src/mrcube/mod.rs:
crates/baselines/src/mrcube/jobs.rs:
crates/baselines/src/mrcube/plan.rs:
crates/baselines/src/naive.rs:
crates/baselines/src/topdown.rs:
