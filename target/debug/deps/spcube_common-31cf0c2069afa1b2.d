/root/repo/target/debug/deps/spcube_common-31cf0c2069afa1b2.d: crates/common/src/lib.rs crates/common/src/error.rs crates/common/src/group.rs crates/common/src/io.rs crates/common/src/mask.rs crates/common/src/order.rs crates/common/src/relation.rs crates/common/src/schema.rs crates/common/src/tuple.rs crates/common/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libspcube_common-31cf0c2069afa1b2.rmeta: crates/common/src/lib.rs crates/common/src/error.rs crates/common/src/group.rs crates/common/src/io.rs crates/common/src/mask.rs crates/common/src/order.rs crates/common/src/relation.rs crates/common/src/schema.rs crates/common/src/tuple.rs crates/common/src/value.rs Cargo.toml

crates/common/src/lib.rs:
crates/common/src/error.rs:
crates/common/src/group.rs:
crates/common/src/io.rs:
crates/common/src/mask.rs:
crates/common/src/order.rs:
crates/common/src/relation.rs:
crates/common/src/schema.rs:
crates/common/src/tuple.rs:
crates/common/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
