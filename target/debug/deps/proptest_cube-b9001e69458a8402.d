/root/repo/target/debug/deps/proptest_cube-b9001e69458a8402.d: tests/proptest_cube.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_cube-b9001e69458a8402.rmeta: tests/proptest_cube.rs Cargo.toml

tests/proptest_cube.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
