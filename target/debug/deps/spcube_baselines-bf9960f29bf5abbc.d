/root/repo/target/debug/deps/spcube_baselines-bf9960f29bf5abbc.d: crates/baselines/src/lib.rs crates/baselines/src/hive.rs crates/baselines/src/mrcube/mod.rs crates/baselines/src/mrcube/jobs.rs crates/baselines/src/mrcube/plan.rs crates/baselines/src/naive.rs crates/baselines/src/topdown.rs Cargo.toml

/root/repo/target/debug/deps/libspcube_baselines-bf9960f29bf5abbc.rmeta: crates/baselines/src/lib.rs crates/baselines/src/hive.rs crates/baselines/src/mrcube/mod.rs crates/baselines/src/mrcube/jobs.rs crates/baselines/src/mrcube/plan.rs crates/baselines/src/naive.rs crates/baselines/src/topdown.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/hive.rs:
crates/baselines/src/mrcube/mod.rs:
crates/baselines/src/mrcube/jobs.rs:
crates/baselines/src/mrcube/plan.rs:
crates/baselines/src/naive.rs:
crates/baselines/src/topdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
