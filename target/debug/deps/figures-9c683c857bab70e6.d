/root/repo/target/debug/deps/figures-9c683c857bab70e6.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-9c683c857bab70e6: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
