/root/repo/target/debug/deps/spcube-e9ddf1faaf4477f2.d: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

/root/repo/target/debug/deps/libspcube-e9ddf1faaf4477f2.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
