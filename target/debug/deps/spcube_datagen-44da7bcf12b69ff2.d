/root/repo/target/debug/deps/spcube_datagen-44da7bcf12b69ff2.d: crates/datagen/src/lib.rs crates/datagen/src/adversarial.rs crates/datagen/src/binomial.rs crates/datagen/src/real_like.rs crates/datagen/src/retail.rs crates/datagen/src/zipf.rs

/root/repo/target/debug/deps/spcube_datagen-44da7bcf12b69ff2: crates/datagen/src/lib.rs crates/datagen/src/adversarial.rs crates/datagen/src/binomial.rs crates/datagen/src/real_like.rs crates/datagen/src/retail.rs crates/datagen/src/zipf.rs

crates/datagen/src/lib.rs:
crates/datagen/src/adversarial.rs:
crates/datagen/src/binomial.rs:
crates/datagen/src/real_like.rs:
crates/datagen/src/retail.rs:
crates/datagen/src/zipf.rs:
