/root/repo/target/debug/deps/inspect-1fbfc98f878e175a.d: crates/bench/src/bin/inspect.rs

/root/repo/target/debug/deps/inspect-1fbfc98f878e175a: crates/bench/src/bin/inspect.rs

crates/bench/src/bin/inspect.rs:
