/root/repo/target/debug/deps/fig6_skew-f8858259017fe970.d: crates/bench/benches/fig6_skew.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_skew-f8858259017fe970.rmeta: crates/bench/benches/fig6_skew.rs Cargo.toml

crates/bench/benches/fig6_skew.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
