/root/repo/target/debug/deps/sketch_props-704e194c7fced95a.d: tests/sketch_props.rs

/root/repo/target/debug/deps/sketch_props-704e194c7fced95a: tests/sketch_props.rs

tests/sketch_props.rs:
