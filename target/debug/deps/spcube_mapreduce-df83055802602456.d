/root/repo/target/debug/deps/spcube_mapreduce-df83055802602456.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/config.rs crates/mapreduce/src/context.rs crates/mapreduce/src/cost.rs crates/mapreduce/src/dfs.rs crates/mapreduce/src/engine.rs crates/mapreduce/src/fault.rs crates/mapreduce/src/job.rs crates/mapreduce/src/metrics.rs crates/mapreduce/src/partition.rs

/root/repo/target/debug/deps/spcube_mapreduce-df83055802602456: crates/mapreduce/src/lib.rs crates/mapreduce/src/config.rs crates/mapreduce/src/context.rs crates/mapreduce/src/cost.rs crates/mapreduce/src/dfs.rs crates/mapreduce/src/engine.rs crates/mapreduce/src/fault.rs crates/mapreduce/src/job.rs crates/mapreduce/src/metrics.rs crates/mapreduce/src/partition.rs

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/config.rs:
crates/mapreduce/src/context.rs:
crates/mapreduce/src/cost.rs:
crates/mapreduce/src/dfs.rs:
crates/mapreduce/src/engine.rs:
crates/mapreduce/src/fault.rs:
crates/mapreduce/src/job.rs:
crates/mapreduce/src/metrics.rs:
crates/mapreduce/src/partition.rs:
