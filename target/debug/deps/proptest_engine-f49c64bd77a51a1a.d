/root/repo/target/debug/deps/proptest_engine-f49c64bd77a51a1a.d: tests/proptest_engine.rs

/root/repo/target/debug/deps/proptest_engine-f49c64bd77a51a1a: tests/proptest_engine.rs

tests/proptest_engine.rs:
