/root/repo/target/debug/deps/engine_integration-103a1223268d9292.d: tests/engine_integration.rs

/root/repo/target/debug/deps/engine_integration-103a1223268d9292: tests/engine_integration.rs

tests/engine_integration.rs:
