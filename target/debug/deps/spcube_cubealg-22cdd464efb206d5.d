/root/repo/target/debug/deps/spcube_cubealg-22cdd464efb206d5.d: crates/cubealg/src/lib.rs crates/cubealg/src/buc.rs crates/cubealg/src/cube.rs crates/cubealg/src/naive.rs crates/cubealg/src/pipesort.rs crates/cubealg/src/query.rs crates/cubealg/src/views.rs

/root/repo/target/debug/deps/libspcube_cubealg-22cdd464efb206d5.rlib: crates/cubealg/src/lib.rs crates/cubealg/src/buc.rs crates/cubealg/src/cube.rs crates/cubealg/src/naive.rs crates/cubealg/src/pipesort.rs crates/cubealg/src/query.rs crates/cubealg/src/views.rs

/root/repo/target/debug/deps/libspcube_cubealg-22cdd464efb206d5.rmeta: crates/cubealg/src/lib.rs crates/cubealg/src/buc.rs crates/cubealg/src/cube.rs crates/cubealg/src/naive.rs crates/cubealg/src/pipesort.rs crates/cubealg/src/query.rs crates/cubealg/src/views.rs

crates/cubealg/src/lib.rs:
crates/cubealg/src/buc.rs:
crates/cubealg/src/cube.rs:
crates/cubealg/src/naive.rs:
crates/cubealg/src/pipesort.rs:
crates/cubealg/src/query.rs:
crates/cubealg/src/views.rs:
