/root/repo/target/debug/deps/spcube-b418d85285ed4e57.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/spcube-b418d85285ed4e57: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
