/root/repo/target/debug/deps/inspect-586238adc5fa2eb3.d: crates/bench/src/bin/inspect.rs Cargo.toml

/root/repo/target/debug/deps/libinspect-586238adc5fa2eb3.rmeta: crates/bench/src/bin/inspect.rs Cargo.toml

crates/bench/src/bin/inspect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
