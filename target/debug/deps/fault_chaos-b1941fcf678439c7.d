/root/repo/target/debug/deps/fault_chaos-b1941fcf678439c7.d: tests/fault_chaos.rs

/root/repo/target/debug/deps/fault_chaos-b1941fcf678439c7: tests/fault_chaos.rs

tests/fault_chaos.rs:
