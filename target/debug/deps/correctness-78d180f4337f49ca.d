/root/repo/target/debug/deps/correctness-78d180f4337f49ca.d: tests/correctness.rs

/root/repo/target/debug/deps/correctness-78d180f4337f49ca: tests/correctness.rs

tests/correctness.rs:
