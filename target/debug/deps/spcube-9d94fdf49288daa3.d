/root/repo/target/debug/deps/spcube-9d94fdf49288daa3.d: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

/root/repo/target/debug/deps/libspcube-9d94fdf49288daa3.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
