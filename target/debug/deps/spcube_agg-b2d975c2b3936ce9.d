/root/repo/target/debug/deps/spcube_agg-b2d975c2b3936ce9.d: crates/agg/src/lib.rs crates/agg/src/output.rs crates/agg/src/spec.rs crates/agg/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libspcube_agg-b2d975c2b3936ce9.rmeta: crates/agg/src/lib.rs crates/agg/src/output.rs crates/agg/src/spec.rs crates/agg/src/state.rs Cargo.toml

crates/agg/src/lib.rs:
crates/agg/src/output.rs:
crates/agg/src/spec.rs:
crates/agg/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
