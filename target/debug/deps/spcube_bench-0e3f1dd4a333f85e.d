/root/repo/target/debug/deps/spcube_bench-0e3f1dd4a333f85e.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libspcube_bench-0e3f1dd4a333f85e.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libspcube_bench-0e3f1dd4a333f85e.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
