/root/repo/target/debug/deps/spcube_core-d796f8fe7715b088.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/sketch/mod.rs crates/core/src/sketch/build.rs crates/core/src/sketch/node.rs crates/core/src/spcube/mod.rs crates/core/src/spcube/job.rs

/root/repo/target/debug/deps/spcube_core-d796f8fe7715b088: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/sketch/mod.rs crates/core/src/sketch/build.rs crates/core/src/sketch/node.rs crates/core/src/spcube/mod.rs crates/core/src/spcube/job.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/sketch/mod.rs:
crates/core/src/sketch/build.rs:
crates/core/src/sketch/node.rs:
crates/core/src/spcube/mod.rs:
crates/core/src/spcube/job.rs:
