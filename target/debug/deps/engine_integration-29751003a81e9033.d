/root/repo/target/debug/deps/engine_integration-29751003a81e9033.d: tests/engine_integration.rs Cargo.toml

/root/repo/target/debug/deps/libengine_integration-29751003a81e9033.rmeta: tests/engine_integration.rs Cargo.toml

tests/engine_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
