/root/repo/target/debug/deps/fig4_wikipedia-7e5467e38f8aaa6b.d: crates/bench/benches/fig4_wikipedia.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_wikipedia-7e5467e38f8aaa6b.rmeta: crates/bench/benches/fig4_wikipedia.rs Cargo.toml

crates/bench/benches/fig4_wikipedia.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
