/root/repo/target/debug/deps/spcube_bench-5c8930628c014d2b.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libspcube_bench-5c8930628c014d2b.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
