/root/repo/target/debug/deps/spcube_lattice-bf2a37d8339bb85a.d: crates/lattice/src/lib.rs crates/lattice/src/anchor.rs crates/lattice/src/bfs.rs crates/lattice/src/cube_lattice.rs crates/lattice/src/tuple_lattice.rs

/root/repo/target/debug/deps/libspcube_lattice-bf2a37d8339bb85a.rlib: crates/lattice/src/lib.rs crates/lattice/src/anchor.rs crates/lattice/src/bfs.rs crates/lattice/src/cube_lattice.rs crates/lattice/src/tuple_lattice.rs

/root/repo/target/debug/deps/libspcube_lattice-bf2a37d8339bb85a.rmeta: crates/lattice/src/lib.rs crates/lattice/src/anchor.rs crates/lattice/src/bfs.rs crates/lattice/src/cube_lattice.rs crates/lattice/src/tuple_lattice.rs

crates/lattice/src/lib.rs:
crates/lattice/src/anchor.rs:
crates/lattice/src/bfs.rs:
crates/lattice/src/cube_lattice.rs:
crates/lattice/src/tuple_lattice.rs:
