/root/repo/target/debug/deps/fault_chaos-b9647395b9ce4b09.d: tests/fault_chaos.rs Cargo.toml

/root/repo/target/debug/deps/libfault_chaos-b9647395b9ce4b09.rmeta: tests/fault_chaos.rs Cargo.toml

tests/fault_chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
