/root/repo/target/debug/deps/fig7_zipf-c95fd6fa98e2657c.d: crates/bench/benches/fig7_zipf.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_zipf-c95fd6fa98e2657c.rmeta: crates/bench/benches/fig7_zipf.rs Cargo.toml

crates/bench/benches/fig7_zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
