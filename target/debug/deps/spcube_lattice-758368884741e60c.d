/root/repo/target/debug/deps/spcube_lattice-758368884741e60c.d: crates/lattice/src/lib.rs crates/lattice/src/anchor.rs crates/lattice/src/bfs.rs crates/lattice/src/cube_lattice.rs crates/lattice/src/tuple_lattice.rs

/root/repo/target/debug/deps/spcube_lattice-758368884741e60c: crates/lattice/src/lib.rs crates/lattice/src/anchor.rs crates/lattice/src/bfs.rs crates/lattice/src/cube_lattice.rs crates/lattice/src/tuple_lattice.rs

crates/lattice/src/lib.rs:
crates/lattice/src/anchor.rs:
crates/lattice/src/bfs.rs:
crates/lattice/src/cube_lattice.rs:
crates/lattice/src/tuple_lattice.rs:
