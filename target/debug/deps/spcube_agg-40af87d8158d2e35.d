/root/repo/target/debug/deps/spcube_agg-40af87d8158d2e35.d: crates/agg/src/lib.rs crates/agg/src/output.rs crates/agg/src/spec.rs crates/agg/src/state.rs

/root/repo/target/debug/deps/libspcube_agg-40af87d8158d2e35.rlib: crates/agg/src/lib.rs crates/agg/src/output.rs crates/agg/src/spec.rs crates/agg/src/state.rs

/root/repo/target/debug/deps/libspcube_agg-40af87d8158d2e35.rmeta: crates/agg/src/lib.rs crates/agg/src/output.rs crates/agg/src/spec.rs crates/agg/src/state.rs

crates/agg/src/lib.rs:
crates/agg/src/output.rs:
crates/agg/src/spec.rs:
crates/agg/src/state.rs:
