/root/repo/target/debug/deps/proptest_engine-c2c3549bc9969430.d: tests/proptest_engine.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_engine-c2c3549bc9969430.rmeta: tests/proptest_engine.rs Cargo.toml

tests/proptest_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
