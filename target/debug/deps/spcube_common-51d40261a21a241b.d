/root/repo/target/debug/deps/spcube_common-51d40261a21a241b.d: crates/common/src/lib.rs crates/common/src/error.rs crates/common/src/group.rs crates/common/src/io.rs crates/common/src/mask.rs crates/common/src/order.rs crates/common/src/relation.rs crates/common/src/schema.rs crates/common/src/tuple.rs crates/common/src/value.rs

/root/repo/target/debug/deps/spcube_common-51d40261a21a241b: crates/common/src/lib.rs crates/common/src/error.rs crates/common/src/group.rs crates/common/src/io.rs crates/common/src/mask.rs crates/common/src/order.rs crates/common/src/relation.rs crates/common/src/schema.rs crates/common/src/tuple.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/error.rs:
crates/common/src/group.rs:
crates/common/src/io.rs:
crates/common/src/mask.rs:
crates/common/src/order.rs:
crates/common/src/relation.rs:
crates/common/src/schema.rs:
crates/common/src/tuple.rs:
crates/common/src/value.rs:
