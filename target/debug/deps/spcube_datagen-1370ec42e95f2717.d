/root/repo/target/debug/deps/spcube_datagen-1370ec42e95f2717.d: crates/datagen/src/lib.rs crates/datagen/src/adversarial.rs crates/datagen/src/binomial.rs crates/datagen/src/real_like.rs crates/datagen/src/retail.rs crates/datagen/src/zipf.rs

/root/repo/target/debug/deps/libspcube_datagen-1370ec42e95f2717.rlib: crates/datagen/src/lib.rs crates/datagen/src/adversarial.rs crates/datagen/src/binomial.rs crates/datagen/src/real_like.rs crates/datagen/src/retail.rs crates/datagen/src/zipf.rs

/root/repo/target/debug/deps/libspcube_datagen-1370ec42e95f2717.rmeta: crates/datagen/src/lib.rs crates/datagen/src/adversarial.rs crates/datagen/src/binomial.rs crates/datagen/src/real_like.rs crates/datagen/src/retail.rs crates/datagen/src/zipf.rs

crates/datagen/src/lib.rs:
crates/datagen/src/adversarial.rs:
crates/datagen/src/binomial.rs:
crates/datagen/src/real_like.rs:
crates/datagen/src/retail.rs:
crates/datagen/src/zipf.rs:
