/root/repo/target/debug/deps/inspect-b07d32a3be0a3f53.d: crates/bench/src/bin/inspect.rs Cargo.toml

/root/repo/target/debug/deps/libinspect-b07d32a3be0a3f53.rmeta: crates/bench/src/bin/inspect.rs Cargo.toml

crates/bench/src/bin/inspect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
