/root/repo/target/debug/deps/spcube_mapreduce-1fa24747e5447d4f.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/config.rs crates/mapreduce/src/context.rs crates/mapreduce/src/cost.rs crates/mapreduce/src/dfs.rs crates/mapreduce/src/engine.rs crates/mapreduce/src/fault.rs crates/mapreduce/src/job.rs crates/mapreduce/src/metrics.rs crates/mapreduce/src/partition.rs

/root/repo/target/debug/deps/libspcube_mapreduce-1fa24747e5447d4f.rlib: crates/mapreduce/src/lib.rs crates/mapreduce/src/config.rs crates/mapreduce/src/context.rs crates/mapreduce/src/cost.rs crates/mapreduce/src/dfs.rs crates/mapreduce/src/engine.rs crates/mapreduce/src/fault.rs crates/mapreduce/src/job.rs crates/mapreduce/src/metrics.rs crates/mapreduce/src/partition.rs

/root/repo/target/debug/deps/libspcube_mapreduce-1fa24747e5447d4f.rmeta: crates/mapreduce/src/lib.rs crates/mapreduce/src/config.rs crates/mapreduce/src/context.rs crates/mapreduce/src/cost.rs crates/mapreduce/src/dfs.rs crates/mapreduce/src/engine.rs crates/mapreduce/src/fault.rs crates/mapreduce/src/job.rs crates/mapreduce/src/metrics.rs crates/mapreduce/src/partition.rs

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/config.rs:
crates/mapreduce/src/context.rs:
crates/mapreduce/src/cost.rs:
crates/mapreduce/src/dfs.rs:
crates/mapreduce/src/engine.rs:
crates/mapreduce/src/fault.rs:
crates/mapreduce/src/job.rs:
crates/mapreduce/src/metrics.rs:
crates/mapreduce/src/partition.rs:
