/root/repo/target/debug/deps/spcube_mapreduce-cab250dbf0de8d61.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/config.rs crates/mapreduce/src/context.rs crates/mapreduce/src/cost.rs crates/mapreduce/src/dfs.rs crates/mapreduce/src/engine.rs crates/mapreduce/src/fault.rs crates/mapreduce/src/job.rs crates/mapreduce/src/metrics.rs crates/mapreduce/src/partition.rs Cargo.toml

/root/repo/target/debug/deps/libspcube_mapreduce-cab250dbf0de8d61.rmeta: crates/mapreduce/src/lib.rs crates/mapreduce/src/config.rs crates/mapreduce/src/context.rs crates/mapreduce/src/cost.rs crates/mapreduce/src/dfs.rs crates/mapreduce/src/engine.rs crates/mapreduce/src/fault.rs crates/mapreduce/src/job.rs crates/mapreduce/src/metrics.rs crates/mapreduce/src/partition.rs Cargo.toml

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/config.rs:
crates/mapreduce/src/context.rs:
crates/mapreduce/src/cost.rs:
crates/mapreduce/src/dfs.rs:
crates/mapreduce/src/engine.rs:
crates/mapreduce/src/fault.rs:
crates/mapreduce/src/job.rs:
crates/mapreduce/src/metrics.rs:
crates/mapreduce/src/partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
