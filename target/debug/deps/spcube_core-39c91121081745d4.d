/root/repo/target/debug/deps/spcube_core-39c91121081745d4.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/sketch/mod.rs crates/core/src/sketch/build.rs crates/core/src/sketch/node.rs crates/core/src/spcube/mod.rs crates/core/src/spcube/job.rs Cargo.toml

/root/repo/target/debug/deps/libspcube_core-39c91121081745d4.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/sketch/mod.rs crates/core/src/sketch/build.rs crates/core/src/sketch/node.rs crates/core/src/spcube/mod.rs crates/core/src/spcube/job.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/sketch/mod.rs:
crates/core/src/sketch/build.rs:
crates/core/src/sketch/node.rs:
crates/core/src/spcube/mod.rs:
crates/core/src/spcube/job.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
