/root/repo/target/debug/deps/spcube_core-0748959f1ca8b6af.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/sketch/mod.rs crates/core/src/sketch/build.rs crates/core/src/sketch/node.rs crates/core/src/spcube/mod.rs crates/core/src/spcube/job.rs

/root/repo/target/debug/deps/libspcube_core-0748959f1ca8b6af.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/sketch/mod.rs crates/core/src/sketch/build.rs crates/core/src/sketch/node.rs crates/core/src/spcube/mod.rs crates/core/src/spcube/job.rs

/root/repo/target/debug/deps/libspcube_core-0748959f1ca8b6af.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/sketch/mod.rs crates/core/src/sketch/build.rs crates/core/src/sketch/node.rs crates/core/src/spcube/mod.rs crates/core/src/spcube/job.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/sketch/mod.rs:
crates/core/src/sketch/build.rs:
crates/core/src/sketch/node.rs:
crates/core/src/spcube/mod.rs:
crates/core/src/spcube/job.rs:
