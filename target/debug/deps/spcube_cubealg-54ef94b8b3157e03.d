/root/repo/target/debug/deps/spcube_cubealg-54ef94b8b3157e03.d: crates/cubealg/src/lib.rs crates/cubealg/src/buc.rs crates/cubealg/src/cube.rs crates/cubealg/src/naive.rs crates/cubealg/src/pipesort.rs crates/cubealg/src/query.rs crates/cubealg/src/views.rs Cargo.toml

/root/repo/target/debug/deps/libspcube_cubealg-54ef94b8b3157e03.rmeta: crates/cubealg/src/lib.rs crates/cubealg/src/buc.rs crates/cubealg/src/cube.rs crates/cubealg/src/naive.rs crates/cubealg/src/pipesort.rs crates/cubealg/src/query.rs crates/cubealg/src/views.rs Cargo.toml

crates/cubealg/src/lib.rs:
crates/cubealg/src/buc.rs:
crates/cubealg/src/cube.rs:
crates/cubealg/src/naive.rs:
crates/cubealg/src/pipesort.rs:
crates/cubealg/src/query.rs:
crates/cubealg/src/views.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
